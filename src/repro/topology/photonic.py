"""Photonic rail-optimized fabric: the paper's proposed data plane.

Each rail's electrical packet switches are replaced by one optical circuit
switch (OCS).  Every GPU of rank *r* contributes its scale-out NIC port(s) to
rail *r*'s OCS; the OCS provides point-to-point circuits between these ports.
There is no spine and no electrical switching on the data path — the logical
structure of the rail-optimized topology (scale-up domains, cabling,
GPU-to-rail mapping) is retained unchanged (paper §2.1).

The fabric exposes:

* a per-rail :class:`~repro.topology.ocs.OpticalCircuitSwitch` whose crossbar
  state is the ground truth for installed circuits;
* a :class:`~repro.topology.base.Topology` view in which installed circuits
  appear as ``OPTICAL_CIRCUIT`` links between NIC-port nodes, so the flow-level
  simulator routes over circuits exactly the way it routes over packet links;
* helpers to build ring configurations for communication groups, which is what
  the Opus controller installs for ring-based collectives;
* a :class:`~repro.topology.railopt.FabricInventory` for the Fig. 7 cost/power
  models (OCS ports plus host-side transceivers only — the OCS is transparent).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import CircuitError, ConfigurationError, TopologyError
from .base import (
    LinkKind,
    NodeKind,
    Topology,
    nic_port_node_name,
    ocs_node_name,
)
from .devices import ClusterSpec, OCSTechnology
from .ocs import Circuit, CircuitConfiguration, OpticalCircuitSwitch
from .railopt import FabricInventory, add_host_ports
from .scaleup import add_scaleup_domains


@dataclass(frozen=True)
class RailEndpoint:
    """One OCS-port endpoint on a rail: a (domain, NIC-port) pair."""

    domain: int
    nic_port: int = 0


@dataclass(frozen=True)
class CircuitChangeEvent:
    """One circuit installed on (or torn from) the fabric's topology view.

    Emitted by :meth:`PhotonicRailFabric.apply_configuration` for every
    circuit whose topology links were added or removed, so time-domain
    consumers (the flow-level network model, tests) can react to connectivity
    changes as they happen instead of diffing the graph.
    """

    rail: int
    circuit: Circuit
    #: The pair of unidirectional topology link ids realizing the circuit.
    link_ids: Tuple[int, int]
    #: True for an install, False for a tear-down.
    installed: bool


#: Callback invoked for every circuit install / tear-down.
CircuitChangeListener = Callable[[CircuitChangeEvent], None]


def _circuit_latency() -> float:
    """Propagation latency of one optical circuit hop, seconds.

    The OCS is optically transparent — no packet processing, no buffering —
    so the circuit hop itself contributes nothing beyond fiber propagation,
    which is negligible at rack scale.  A GPU-to-GPU route over a circuit
    (host link + circuit + host link) then carries the same 2 microseconds the
    analytic scale-out link model charges, keeping the flow-level and analytic
    photonic modes comparable on contention-free traffic.
    """
    return 0.0


class PhotonicRail:
    """One rail of the photonic fabric: an OCS plus its port mapping.

    The OCS port assigned to a (domain, nic_port) endpoint is
    ``domain * ports_per_gpu + nic_port``; this is a fixed cabling decision
    made at build time, mirroring how fibers are physically patched once.
    """

    def __init__(
        self,
        rail: int,
        cluster: ClusterSpec,
        technology: Optional[OCSTechnology] = None,
    ) -> None:
        self.rail = rail
        self.cluster = cluster
        self.technology = technology or cluster.ocs
        self.ports_per_gpu = cluster.nic_port_config.num_ports
        required_ports = cluster.num_domains * self.ports_per_gpu
        if required_ports > self.technology.radix:
            raise ConfigurationError(
                f"rail {rail} needs {required_ports} OCS ports but "
                f"{self.technology.name} ({self.technology.vendor}) only has "
                f"radix {self.technology.radix}; use a larger-radix OCS or "
                f"fewer scale-up domains"
            )
        self.ocs = OpticalCircuitSwitch(
            name=ocs_node_name(rail), technology=self.technology
        )

    # ------------------------------------------------------------------ #
    # Port mapping
    # ------------------------------------------------------------------ #

    def ocs_port(self, endpoint: RailEndpoint) -> int:
        """Return the OCS port wired to ``endpoint``."""
        if not 0 <= endpoint.domain < self.cluster.num_domains:
            raise ConfigurationError(f"domain {endpoint.domain} out of range")
        if not 0 <= endpoint.nic_port < self.ports_per_gpu:
            raise ConfigurationError(f"NIC port {endpoint.nic_port} out of range")
        return endpoint.domain * self.ports_per_gpu + endpoint.nic_port

    def endpoint_of(self, ocs_port: int) -> RailEndpoint:
        """Return the (domain, NIC-port) endpoint wired to ``ocs_port``."""
        if not 0 <= ocs_port < self.cluster.num_domains * self.ports_per_gpu:
            raise ConfigurationError(f"OCS port {ocs_port} is not cabled")
        return RailEndpoint(
            domain=ocs_port // self.ports_per_gpu,
            nic_port=ocs_port % self.ports_per_gpu,
        )

    def gpu_of(self, endpoint: RailEndpoint) -> int:
        """Return the global GPU id owning ``endpoint`` on this rail."""
        return self.cluster.gpu_id(endpoint.domain, self.rail)

    # ------------------------------------------------------------------ #
    # Configuration builders
    # ------------------------------------------------------------------ #

    def circuit_between(
        self, a: RailEndpoint, b: RailEndpoint
    ) -> Circuit:
        """Build (but do not install) a circuit between two endpoints."""
        return Circuit(self.ocs_port(a), self.ocs_port(b))

    # ------------------------------------------------------------------ #
    # Port health (fault injection)
    # ------------------------------------------------------------------ #

    def fail_port(self, port: int) -> Optional[Circuit]:
        """Take one OCS port out of service; returns the circuit it carried.

        Failed ports are treated as permanently conflicting: the
        configuration builders below (and the circuit planner on top of
        them) route rings and pairs through each domain's surviving NIC
        ports instead, and installs that would touch the port raise.
        """
        return self.ocs.fail_port(port)

    def healthy_nic_ports(self, domain: int) -> Tuple[int, ...]:
        """NIC ports of ``domain`` whose OCS ports are still in service."""
        return tuple(
            nic_port
            for nic_port in range(self.ports_per_gpu)
            if not self.ocs.port_failed(
                self.ocs_port(RailEndpoint(domain, nic_port))
            )
        )

    def healthy_port(self, domain: int, preferred: int) -> int:
        """``preferred`` if its OCS port is healthy, else the first survivor."""
        if not self.ocs.port_failed(
            self.ocs_port(RailEndpoint(domain, preferred))
        ):
            return preferred
        healthy = self.healthy_nic_ports(domain)
        if not healthy:
            raise CircuitError(
                f"rail {self.rail}: domain {domain} has no healthy NIC port "
                "left (fault injection)"
            )
        return healthy[0]

    def healthy_port_pair(self, domain: int, preferred: Tuple[int, ...]) -> Tuple[int, int]:
        """An (in, out) NIC-port pair for a ring member, avoiding failed ports."""
        healthy = self.healthy_nic_ports(domain)
        if len(healthy) >= 2:
            if preferred[0] in healthy and preferred[1] in healthy:
                return preferred[0], preferred[1]
            return healthy[0], healthy[1]
        raise CircuitError(
            f"rail {self.rail}: domain {domain} needs two healthy NIC ports "
            f"for a ring but has {len(healthy)} (fault injection)"
        )

    def ring_configuration(
        self,
        domains: Sequence[int],
        nic_ports: Tuple[int, ...] = (0,),
    ) -> CircuitConfiguration:
        """Build a ring over ``domains`` on this rail.

        With a single NIC port per GPU the ring uses that port for both the
        upstream and downstream neighbor only when the group has exactly two
        members (the circuit is duplex); larger groups need two ports per GPU
        (``nic_ports=(0, 1)``), one toward each ring neighbor — this is
        exactly the paper's degree constraint C1/C3.

        Parameters
        ----------
        domains:
            Scale-up domain indices of the group members, in ring order.
        nic_ports:
            The NIC port(s) each member dedicates to this ring.
        """
        members = list(domains)
        if len(members) < 2:
            return CircuitConfiguration(())
        if len(set(members)) != len(members):
            raise ConfigurationError("ring members must be distinct domains")
        if len(members) == 2:
            a, b = members
            circuit = self.circuit_between(
                RailEndpoint(a, self.healthy_port(a, nic_ports[0])),
                RailEndpoint(b, self.healthy_port(b, nic_ports[0])),
            )
            return CircuitConfiguration((circuit,))
        if len(nic_ports) < 2:
            raise ConfigurationError(
                f"a ring over {len(members)} domains needs two NIC ports per GPU "
                "(one per neighbor); got only one (constraint C1/C3)"
            )
        preferred = (nic_ports[0], nic_ports[1])
        ports = {
            domain: self.healthy_port_pair(domain, preferred)
            for domain in members
        }
        circuits = []
        for index, domain in enumerate(members):
            next_domain = members[(index + 1) % len(members)]
            circuits.append(
                self.circuit_between(
                    RailEndpoint(domain, ports[domain][1]),
                    RailEndpoint(next_domain, ports[next_domain][0]),
                )
            )
        return CircuitConfiguration(circuits)

    def pairwise_configuration(
        self, pairs: Iterable[Tuple[int, int]], nic_port: int = 0
    ) -> CircuitConfiguration:
        """Build point-to-point circuits between the given domain pairs."""
        circuits = [
            self.circuit_between(
                RailEndpoint(a, self.healthy_port(a, nic_port)),
                RailEndpoint(b, self.healthy_port(b, nic_port)),
            )
            for a, b in pairs
        ]
        return CircuitConfiguration(circuits)

    def __repr__(self) -> str:
        return (
            f"PhotonicRail(rail={self.rail}, ocs={self.technology.name!r}, "
            f"circuits={len(self.ocs.installed)})"
        )


@dataclass
class PhotonicRailFabric:
    """The full photonic rail fabric: per-rail OCSes plus a topology view."""

    cluster: ClusterSpec
    topology: Topology
    rails: Dict[int, PhotonicRail]
    inventory: FabricInventory
    #: topology link ids currently realizing each installed circuit,
    #: keyed by (rail, circuit).
    _circuit_links: Dict[Tuple[int, Circuit], Tuple[int, int]] = field(
        default_factory=dict
    )
    #: Callbacks notified on every circuit install / tear-down.
    _listeners: List[CircuitChangeListener] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Circuit management
    # ------------------------------------------------------------------ #

    def add_circuit_listener(self, listener: CircuitChangeListener) -> None:
        """Subscribe to circuit install / tear-down events.

        Listeners fire synchronously from :meth:`apply_configuration`, after
        the topology links have been added (install) or removed (tear-down).
        """
        self._listeners.append(listener)

    def circuit_links(self, rail: int, circuit: Circuit) -> Tuple[int, int]:
        """Topology link ids currently realizing ``circuit`` on ``rail``."""
        key = (rail, circuit)
        if key not in self._circuit_links:
            raise CircuitError(
                f"circuit {circuit} is not installed on rail {rail}"
            )
        return self._circuit_links[key]

    def rail(self, rail: int) -> PhotonicRail:
        """Return the :class:`PhotonicRail` for rail index ``rail``."""
        if rail not in self.rails:
            raise TopologyError(f"rail {rail} does not exist")
        return self.rails[rail]

    def installed_configuration(self, rail: int) -> CircuitConfiguration:
        """Return the circuit configuration currently installed on ``rail``."""
        return self.rail(rail).ocs.installed

    def apply_configuration(
        self, rail: int, configuration: CircuitConfiguration
    ) -> Tuple[int, int]:
        """Reconfigure ``rail`` to ``configuration`` and update the topology.

        Returns ``(num_torn_down, num_set_up)``.  The *time* cost of the
        reconfiguration is not modelled here — the simulator and the Opus
        controller account for the switching delay; this method only mutates
        connectivity state.
        """
        photonic_rail = self.rail(rail)
        installed = photonic_rail.ocs.installed
        tear_down, set_up = installed.delta(configuration)
        result = photonic_rail.ocs.apply(configuration)
        for circuit in tear_down:
            self._remove_circuit_links(rail, circuit)
        for circuit in set_up:
            self._add_circuit_links(rail, photonic_rail, circuit)
        return result

    def clear_rail(self, rail: int) -> None:
        """Tear down every circuit on ``rail``."""
        self.apply_configuration(rail, CircuitConfiguration(()))

    def circuit_path_exists(self, src_gpu: int, dst_gpu: int) -> bool:
        """Return whether the installed circuits give ``src_gpu`` a direct
        rail path to ``dst_gpu`` (same rail and a circuit between them)."""
        cluster = self.cluster
        if cluster.rail_of(src_gpu) != cluster.rail_of(dst_gpu):
            return False
        rail = cluster.rail_of(src_gpu)
        photonic_rail = self.rail(rail)
        src_domain = cluster.domain_of(src_gpu)
        dst_domain = cluster.domain_of(dst_gpu)
        installed = photonic_rail.ocs.installed
        for nic_port in range(photonic_rail.ports_per_gpu):
            src_port = photonic_rail.ocs_port(RailEndpoint(src_domain, nic_port))
            peer = installed.peer_of(src_port)
            if peer is None:
                continue
            if photonic_rail.endpoint_of(peer).domain == dst_domain:
                return True
        return False

    # ------------------------------------------------------------------ #
    # Internal topology maintenance
    # ------------------------------------------------------------------ #

    def _add_circuit_links(
        self, rail: int, photonic_rail: PhotonicRail, circuit: Circuit
    ) -> None:
        endpoint_a = photonic_rail.endpoint_of(circuit.port_a)
        endpoint_b = photonic_rail.endpoint_of(circuit.port_b)
        gpu_a = photonic_rail.gpu_of(endpoint_a)
        gpu_b = photonic_rail.gpu_of(endpoint_b)
        node_a = nic_port_node_name(gpu_a, endpoint_a.nic_port)
        node_b = nic_port_node_name(gpu_b, endpoint_b.nic_port)
        bandwidth = self.cluster.nic_port_config.port_bandwidth
        forward, backward = self.topology.add_bidirectional_link(
            node_a,
            node_b,
            bandwidth=bandwidth,
            latency=_circuit_latency(),
            kind=LinkKind.OPTICAL_CIRCUIT,
        )
        link_ids = (forward.link_id, backward.link_id)
        self._circuit_links[(rail, circuit)] = link_ids
        self._notify(CircuitChangeEvent(rail, circuit, link_ids, installed=True))

    def _remove_circuit_links(self, rail: int, circuit: Circuit) -> None:
        link_ids = self._circuit_links.pop((rail, circuit), None)
        if link_ids is None:
            raise CircuitError(
                f"no topology links recorded for circuit {circuit} on rail {rail}"
            )
        for link_id in link_ids:
            self.topology.remove_link(link_id)
        self._notify(CircuitChangeEvent(rail, circuit, link_ids, installed=False))

    def _notify(self, event: CircuitChangeEvent) -> None:
        for listener in self._listeners:
            listener(event)


def photonic_rail_inventory(cluster: ClusterSpec) -> FabricInventory:
    """Closed-form photonic-rail bill of materials for the Fig. 7 sweeps.

    Every NIC port is cabled to one OCS port; transceivers exist only at the
    host ends (the OCS is optically transparent), and the number of
    (potential) circuits is one per two ports.
    """
    ports_per_gpu = cluster.nic_port_config.num_ports
    nic_ports = cluster.num_gpus * ports_per_gpu
    return FabricInventory(
        electrical_switches=0,
        ocs_ports=nic_ports,
        transceivers=nic_ports,
        links=nic_ports // 2,
    )


def build_photonic_rail_fabric(
    cluster: ClusterSpec,
    technology: Optional[OCSTechnology] = None,
    initial_configurations: Optional[Mapping[int, CircuitConfiguration]] = None,
) -> PhotonicRailFabric:
    """Build the photonic rail fabric for ``cluster``.

    Parameters
    ----------
    cluster:
        Hardware description; ``cluster.ocs`` supplies the default OCS
        technology.
    technology:
        Override the OCS technology for every rail (e.g. to sweep Table 3).
    initial_configurations:
        Optional per-rail circuit configurations to install at build time.
    """
    topology = Topology(name=f"photonic-rail[{cluster.num_gpus}]")
    add_scaleup_domains(topology, cluster)
    add_host_ports(topology, cluster)

    rails: Dict[int, PhotonicRail] = {}
    for rail in range(cluster.num_rails):
        photonic_rail = PhotonicRail(rail, cluster, technology=technology)
        topology.add_node(
            ocs_node_name(rail),
            NodeKind.OCS,
            rail=rail,
            technology=photonic_rail.technology.name,
        )
        rails[rail] = photonic_rail

    fabric = PhotonicRailFabric(
        cluster=cluster,
        topology=topology,
        rails=rails,
        inventory=photonic_rail_inventory(cluster),
    )
    if initial_configurations:
        for rail, configuration in initial_configurations.items():
            fabric.apply_configuration(rail, configuration)
    return fabric
