"""NIC port partitioning and the bandwidth-fragmentation constraint (C3).

The paper's §3 identifies three constraints imposed by the limited node degree
of a GPU in a photonic rail:

* **C1** — only ring-style collectives are feasible at low degree;
* **C2** — the number of simultaneously supported parallelism dimensions is
  bounded by the degree;
* **C3** — statically partitioning NIC ports across communication groups
  fragments the NIC bandwidth, so each collective only sees a fraction of it.

This module provides a small allocator that assigns logical NIC ports to
scale-out parallelism dimensions and reports the per-dimension bandwidth, used
by the examples, the ablation benchmarks, and the feasibility checks in
:mod:`repro.parallelism.config`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from ..errors import ConfigurationError
from .devices import NICPortConfig, NICSpec, CONNECTX7

#: Number of circuit endpoints (neighbors) a rank needs per scale-out
#: parallelism dimension when using a bidirectional ring algorithm: one
#: neighbor upstream and one downstream.  A dimension of size 2 degenerates to
#: a single neighbor.
RING_NEIGHBORS = 2


@dataclass(frozen=True)
class PortAssignment:
    """The NIC ports assigned to one scale-out parallelism dimension."""

    dimension: str
    ports: Tuple[int, ...]
    port_bandwidth: float

    @property
    def num_ports(self) -> int:
        """Number of logical ports assigned to this dimension."""
        return len(self.ports)

    @property
    def bandwidth(self) -> float:
        """Aggregate bandwidth available to this dimension (bytes/s)."""
        return self.num_ports * self.port_bandwidth


@dataclass(frozen=True)
class NICAllocation:
    """A complete static partition of a NIC's logical ports across dimensions."""

    nic: NICSpec
    port_config: NICPortConfig
    assignments: Tuple[PortAssignment, ...]

    @property
    def total_bandwidth(self) -> float:
        """The NIC's full-bandwidth (unfragmented) capacity."""
        return self.nic.total_bandwidth

    def assignment_for(self, dimension: str) -> PortAssignment:
        """Return the port assignment for ``dimension``."""
        for assignment in self.assignments:
            if assignment.dimension == dimension:
                return assignment
        raise ConfigurationError(f"no ports assigned to dimension {dimension!r}")

    def bandwidth_fraction(self, dimension: str) -> float:
        """Fraction of full NIC bandwidth available to ``dimension`` (C3)."""
        return self.assignment_for(dimension).bandwidth / self.total_bandwidth

    @property
    def fragmentation_factor(self) -> float:
        """Worst-case bandwidth fraction across all assigned dimensions.

        1.0 means a dimension can use the full NIC; 0.5 means the fabric
        halves the bandwidth seen by every collective (the paper's DGX H200
        example with the 4-port configuration and two scale-out dimensions).
        """
        if not self.assignments:
            return 1.0
        return min(
            assignment.bandwidth / self.total_bandwidth
            for assignment in self.assignments
        )


def ports_required(num_scaleout_dimensions: int, dimension_sizes: Sequence[int]) -> int:
    """Number of logical NIC ports needed to host the given scale-out dimensions.

    Each dimension using a ring needs two neighbors unless its size is 2
    (a single peer) or 1 (no scale-out traffic at all).
    """
    if num_scaleout_dimensions != len(dimension_sizes):
        raise ConfigurationError(
            "dimension_sizes must have one entry per scale-out dimension"
        )
    total = 0
    for size in dimension_sizes:
        if size <= 0:
            raise ConfigurationError("parallelism dimension sizes must be positive")
        if size == 1:
            continue
        total += 1 if size == 2 else RING_NEIGHBORS
    return total


def allocate_ports(
    dimensions: Mapping[str, int],
    nic: NICSpec = CONNECTX7,
    num_ports: int = 4,
) -> NICAllocation:
    """Statically partition ``num_ports`` logical NIC ports across dimensions.

    Parameters
    ----------
    dimensions:
        Mapping of scale-out dimension name to its group size, e.g.
        ``{"dp": 4, "pp": 2}``.  Dimensions of size 1 receive no ports.
    nic:
        The NIC model (defaults to ConnectX-7).
    num_ports:
        Which logical port configuration to use (1, 2, or 4 for ConnectX-7).

    Returns
    -------
    NICAllocation
        Port assignments in the order the dimensions were given.

    Raises
    ------
    ConfigurationError
        If the dimensions need more ports than the configuration exposes
        (the paper's constraint C2).
    """
    port_config = nic.config_with_ports(num_ports)
    needed = ports_required(
        len(dimensions), [size for size in dimensions.values()]
    )
    if needed > port_config.num_ports:
        raise ConfigurationError(
            f"{len(dimensions)} scale-out dimensions need {needed} NIC ports but "
            f"the {num_ports}-port configuration of {nic.name} only exposes "
            f"{port_config.num_ports} (constraint C2)"
        )

    assignments: List[PortAssignment] = []
    next_port = 0
    for name, size in dimensions.items():
        if size == 1:
            assignments.append(
                PortAssignment(
                    dimension=name, ports=(), port_bandwidth=port_config.port_bandwidth
                )
            )
            continue
        count = 1 if size == 2 else RING_NEIGHBORS
        ports = tuple(range(next_port, next_port + count))
        next_port += count
        assignments.append(
            PortAssignment(
                dimension=name,
                ports=ports,
                port_bandwidth=port_config.port_bandwidth,
            )
        )
    return NICAllocation(
        nic=nic, port_config=port_config, assignments=tuple(assignments)
    )


def effective_bandwidth_per_dimension(
    dimensions: Mapping[str, int],
    nic: NICSpec = CONNECTX7,
    num_ports: int = 4,
) -> Dict[str, float]:
    """Convenience wrapper returning per-dimension bandwidth in bytes/s."""
    allocation = allocate_ports(dimensions, nic=nic, num_ports=num_ports)
    return {
        assignment.dimension: assignment.bandwidth
        for assignment in allocation.assignments
    }
