"""Scale-up (high-bandwidth, intra-domain) interconnect builder.

A scale-up domain is one DGX/HGX node or one GB200 NVL72 rack: all GPUs inside
it are connected through NVLink/NVSwitch at hundreds of GB/s.  In the paper's
design the scale-up interconnect is left untouched — TP (and SP) collectives
stay inside it, and it additionally serves as the forwarding substrate for
cross-rank traffic (PXN-style) when the photonic rail cannot provide a direct
circuit.

The builder models each domain as a non-blocking NVSwitch star: every GPU has a
bidirectional link to the domain's NVSwitch node with the domain's per-GPU
interconnect bandwidth.  This captures the two properties the rest of the
library relies on: (a) full connectivity inside the domain and (b) a per-GPU
bandwidth cap.
"""

from __future__ import annotations

from typing import List

from .base import LinkKind, NodeKind, Topology, gpu_node_name
from .devices import ClusterSpec


def nvswitch_node_name(domain: int) -> str:
    """Canonical node name for the NVSwitch of a scale-up domain."""
    return f"domain{domain}.nvswitch"


def add_scaleup_domains(topology: Topology, cluster: ClusterSpec) -> None:
    """Add all scale-up domains of ``cluster`` (GPUs + NVSwitches) to ``topology``.

    Idempotence is not attempted: calling this twice on the same topology
    raises because the GPU nodes already exist.
    """
    spec = cluster.scaleup
    for domain in range(cluster.num_domains):
        switch_name = nvswitch_node_name(domain)
        topology.add_node(switch_name, NodeKind.NVSWITCH, domain=domain)
        for local_rank in range(spec.gpus_per_domain):
            gpu_id = cluster.gpu_id(domain, local_rank)
            gpu_name = gpu_node_name(gpu_id)
            topology.add_node(
                gpu_name,
                NodeKind.GPU,
                gpu_id=gpu_id,
                domain=domain,
                local_rank=local_rank,
                rail=local_rank,
            )
            topology.add_bidirectional_link(
                gpu_name,
                switch_name,
                bandwidth=spec.interconnect_bandwidth,
                latency=spec.interconnect_latency,
                kind=LinkKind.SCALE_UP,
            )


def build_scaleup_only_topology(cluster: ClusterSpec) -> Topology:
    """Build a topology containing only the scale-up domains (no scale-out).

    Useful for testing TP-only workloads and as the starting point for the
    fabric builders, which layer their scale-out network on top.
    """
    topology = Topology(name=f"scaleup[{cluster.scaleup.name}x{cluster.num_domains}]")
    add_scaleup_domains(topology, cluster)
    return topology


def gpus_in_domain(cluster: ClusterSpec, domain: int) -> List[str]:
    """Return the GPU node names of one scale-up domain."""
    return [
        gpu_node_name(cluster.gpu_id(domain, local_rank))
        for local_rank in range(cluster.scaleup.gpus_per_domain)
    ]
