"""Electrical rail-optimized fabric builder (the paper's baseline).

A rail-optimized fabric (paper §2.1, Fig. 1, [51, 71]) groups the GPUs with the
same local rank across all scale-up domains into a *rail* and gives every rail
its own packet-switched network.  Each rail is built from electrical leaf
switches; when one leaf switch cannot host every domain of the rail, a spine
tier interconnects the leaves (and, in the classical DGX SuperPOD deployment,
also interconnects rails for cross-rank traffic).

The builder produces:

* one NIC-port node per GPU, attached to the GPU by a host link;
* per-rail leaf switches with down-links to the NIC ports of that rail;
* a spine tier with full-bisection up-links from every leaf (omitted when a
  single leaf suffices and ``always_spine`` is False);
* an inventory (:class:`FabricInventory`) of switches and transceivers used by
  the Fig. 7 cost/power models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .base import (
    LinkKind,
    NodeKind,
    Topology,
    gpu_node_name,
    nic_port_node_name,
    switch_node_name,
)
from .devices import ClusterSpec
from .scaleup import add_scaleup_domains


@dataclass(frozen=True)
class FabricInventory:
    """Bill-of-materials of a fabric, consumed by the cost/power models.

    Attributes
    ----------
    electrical_switches:
        Number of electrical packet switches (all tiers).
    ocs_ports:
        Number of OCS ports in use (photonic fabrics only).
    transceivers:
        Number of pluggable optical transceivers (one per fiber end that
        terminates on an electrical device: host NIC ports and electrical
        switch ports; OCS ports are transparent and need none).
    links:
        Number of bidirectional fiber links.
    """

    electrical_switches: int = 0
    ocs_ports: int = 0
    transceivers: int = 0
    links: int = 0


def _host_latency() -> float:
    """Fixed host link latency (NIC + PCIe serialization), seconds."""
    return 1e-6


def _switch_latency() -> float:
    """Per-hop latency of an electrical packet switch, seconds."""
    return 1e-6


def add_host_ports(topology: Topology, cluster: ClusterSpec) -> None:
    """Add one node per logical NIC port of every GPU with host links."""
    port_config = cluster.nic_port_config
    for gpu_id in range(cluster.num_gpus):
        gpu_name = gpu_node_name(gpu_id)
        for port in range(port_config.num_ports):
            port_name = nic_port_node_name(gpu_id, port)
            topology.add_node(
                port_name,
                NodeKind.NIC_PORT,
                gpu_id=gpu_id,
                port=port,
                rail=cluster.rail_of(gpu_id),
            )
            topology.add_bidirectional_link(
                gpu_name,
                port_name,
                bandwidth=port_config.port_bandwidth,
                latency=_host_latency(),
                kind=LinkKind.HOST,
            )


@dataclass
class RailOptimizedFabric:
    """An electrical rail-optimized fabric: topology plus inventory."""

    cluster: ClusterSpec
    topology: Topology
    inventory: FabricInventory
    leaf_switches_per_rail: int
    spine_switches: int


def build_rail_optimized_fabric(
    cluster: ClusterSpec, always_spine: bool = True
) -> RailOptimizedFabric:
    """Build the electrical rail-optimized fabric for ``cluster``.

    Parameters
    ----------
    cluster:
        Hardware description.  The NIC port configuration determines how many
        scale-out ports each GPU contributes to its rail.
    always_spine:
        When True (default, matching the DGX SuperPOD reference design in
        Fig. 1) a spine tier is built even if each rail fits in one leaf
        switch, providing cross-rail connectivity.  Set to False to model the
        "rail-only" variant [71].
    """
    switch_spec = cluster.electrical_switch
    port_config = cluster.nic_port_config
    ports_per_gpu = port_config.num_ports
    endpoints_per_rail = cluster.num_domains * ports_per_gpu

    topology = Topology(name=f"rail-optimized[{cluster.num_gpus}]")
    add_scaleup_domains(topology, cluster)
    add_host_ports(topology, cluster)

    half_radix = switch_spec.radix // 2
    leaves_per_rail = max(1, math.ceil(endpoints_per_rail / half_radix))
    single_leaf_per_rail = leaves_per_rail == 1 and not always_spine

    # Leaf (rail) switches and down-links.
    for rail in range(cluster.num_rails):
        for leaf in range(leaves_per_rail):
            name = switch_node_name(f"rail{rail}.leaf", leaf)
            topology.add_node(
                name, NodeKind.ELECTRICAL_SWITCH, rail=rail, tier="leaf"
            )
        rail_gpus = cluster.gpus_on_rail(rail)
        for index, gpu_id in enumerate(rail_gpus):
            for port in range(ports_per_gpu):
                endpoint_index = index * ports_per_gpu + port
                leaf = endpoint_index % leaves_per_rail
                leaf_name = switch_node_name(f"rail{rail}.leaf", leaf)
                topology.add_bidirectional_link(
                    nic_port_node_name(gpu_id, port),
                    leaf_name,
                    bandwidth=port_config.port_bandwidth,
                    latency=_switch_latency(),
                    kind=LinkKind.ELECTRICAL,
                )

    # Spine tier: full bisection over all leaves of all rails.
    total_leaves = leaves_per_rail * cluster.num_rails
    num_uplinks_per_leaf = half_radix if not single_leaf_per_rail else 0
    total_uplinks = total_leaves * num_uplinks_per_leaf
    spine_switches = (
        0 if single_leaf_per_rail else max(1, math.ceil(total_uplinks / switch_spec.radix))
    )
    for spine in range(spine_switches):
        topology.add_node(
            switch_node_name("spine", spine), NodeKind.ELECTRICAL_SWITCH, tier="spine"
        )
    if spine_switches:
        uplink_bandwidth = switch_spec.port_bandwidth
        per_leaf_per_spine = max(1, num_uplinks_per_leaf // spine_switches)
        for rail in range(cluster.num_rails):
            for leaf in range(leaves_per_rail):
                leaf_name = switch_node_name(f"rail{rail}.leaf", leaf)
                for spine in range(spine_switches):
                    topology.add_bidirectional_link(
                        leaf_name,
                        switch_node_name("spine", spine),
                        bandwidth=uplink_bandwidth * per_leaf_per_spine,
                        latency=_switch_latency(),
                        kind=LinkKind.ELECTRICAL,
                    )

    # Inventory for the cost / power model.
    num_leaves = total_leaves
    host_links = cluster.num_gpus * ports_per_gpu
    leaf_spine_links = 0 if not spine_switches else total_leaves * spine_switches
    # Each host link has a transceiver at the NIC end and at the switch end;
    # each inter-switch link has one at each end.
    leaf_spine_fibers = total_uplinks
    transceivers = 2 * host_links + 2 * leaf_spine_fibers
    inventory = FabricInventory(
        electrical_switches=num_leaves + spine_switches,
        ocs_ports=0,
        transceivers=transceivers,
        links=host_links + leaf_spine_fibers,
    )
    return RailOptimizedFabric(
        cluster=cluster,
        topology=topology,
        inventory=inventory,
        leaf_switches_per_rail=leaves_per_rail,
        spine_switches=spine_switches,
    )


def rail_optimized_inventory(cluster: ClusterSpec, always_spine: bool = True) -> FabricInventory:
    """Compute the rail-optimized inventory without materializing the graph.

    The closed-form counting mirrors :func:`build_rail_optimized_fabric` and is
    used by the Fig. 7 sweeps, where building multigraphs for 8192 GPUs at
    every sweep point would be wasteful.
    """
    switch_spec = cluster.electrical_switch
    ports_per_gpu = cluster.nic_port_config.num_ports
    endpoints_per_rail = cluster.num_domains * ports_per_gpu
    half_radix = switch_spec.radix // 2
    leaves_per_rail = max(1, math.ceil(endpoints_per_rail / half_radix))
    single_leaf_per_rail = leaves_per_rail == 1 and not always_spine
    total_leaves = leaves_per_rail * cluster.num_rails
    num_uplinks_per_leaf = 0 if single_leaf_per_rail else half_radix
    total_uplinks = total_leaves * num_uplinks_per_leaf
    spine_switches = (
        0 if single_leaf_per_rail else max(1, math.ceil(total_uplinks / switch_spec.radix))
    )
    host_links = cluster.num_gpus * ports_per_gpu
    transceivers = 2 * host_links + 2 * total_uplinks
    return FabricInventory(
        electrical_switches=total_leaves + spine_switches,
        ocs_ports=0,
        transceivers=transceivers,
        links=host_links + total_uplinks,
    )
