"""Fully-connected electrical rail topology for the flow-level network mode.

The analytic :class:`~repro.simulator.network.ElectricalRailNetworkModel`
prices every scale-out collective at the NIC port line rate — full rail
connectivity with no internal oversubscription.  The flow-level network mode
needs an explicit link graph to route transfers over, so this builder
materializes the same assumption as a topology:

* every GPU attaches through an explicit NIC node to one non-blocking
  crossbar; both the host link and the NIC uplink run at the scale-out port
  bandwidth, so a GPU's injection rate is the only capacity constraint —
  exactly as in the analytic model;
* the crossbar is a *node*, not a set of shared links, so transfers between
  different GPU pairs never contend — full any-to-any connectivity at line
  rate.

The explicit NIC tier matters for routing: a min-hop path can never shortcut
through another GPU's NIC and NVLink (such a detour is strictly longer than
the 4-hop fabric route), and intra-domain pairs keep their strictly shorter
2-hop NVLink route.  Link latencies are chosen so every fabric path sums to
the 2 microseconds the analytic model charges per hop, keeping the flow and
analytic modes in agreement on contention-free workloads.
"""

from __future__ import annotations

from .base import LinkKind, NodeKind, Topology, gpu_node_name, nic_port_node_name
from .devices import ClusterSpec
from .scaleup import add_scaleup_domains

#: Per-link latency: a fabric path is gpu -> nic -> crossbar -> nic -> gpu,
#: so four links sum to the analytic model's 2 microsecond scale-out latency.
_LINK_LATENCY = 0.5e-6

#: Canonical node name of the non-blocking crossbar all NICs attach to.
CROSSBAR_NODE_NAME = "electrical.xbar"


def build_fully_connected_rail_topology(cluster: ClusterSpec) -> Topology:
    """Build the fully-provisioned electrical rail graph for ``cluster``."""
    topology = Topology(name=f"electrical-rails[{cluster.num_gpus}]")
    add_scaleup_domains(topology, cluster)
    topology.add_node(CROSSBAR_NODE_NAME, NodeKind.ELECTRICAL_SWITCH, tier="xbar")
    port_bandwidth = cluster.scaleout_port_bandwidth
    for gpu_id in range(cluster.num_gpus):
        nic = nic_port_node_name(gpu_id, 0)
        topology.add_node(
            nic, NodeKind.NIC_PORT, gpu_id=gpu_id, port=0, rail=cluster.rail_of(gpu_id)
        )
        topology.add_bidirectional_link(
            gpu_node_name(gpu_id),
            nic,
            bandwidth=port_bandwidth,
            latency=_LINK_LATENCY,
            kind=LinkKind.HOST,
        )
        topology.add_bidirectional_link(
            nic,
            CROSSBAR_NODE_NAME,
            bandwidth=port_bandwidth,
            latency=_LINK_LATENCY,
            kind=LinkKind.ELECTRICAL,
        )
    return topology
