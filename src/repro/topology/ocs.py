"""Optical circuit switch (OCS) device model.

An OCS is a crossbar of optical ports: at any instant each input port is
connected to at most one output port, forming point-to-point *circuits* with no
packet processing in between.  Reconfiguring the crossbar (tearing circuits
down and setting new ones up) takes the technology-dependent switching time
surveyed in the paper's Table 3.

This module models a single OCS as a port-mapping state machine with strict
conflict checking.  The photonic rail fabric (:mod:`repro.topology.photonic`)
instantiates one (or more) OCS per rail and translates installed circuits into
topology links; the Opus controller (:mod:`repro.core.controller`) drives
reconfigurations against these objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..errors import CircuitConflictError, CircuitError
from .devices import OCSTechnology, PIEZO_POLATIS


@dataclass(frozen=True)
class Circuit:
    """A single optical circuit between two OCS ports.

    Circuits are modelled as *duplex*: installing ``Circuit(a, b)`` connects
    port ``a`` to port ``b`` in both directions, matching how MEMS/piezo
    crossbars and bidirectional transceivers are deployed (paper Table 3).
    The pair is stored in normalized (sorted) order so ``Circuit(3, 7)`` and
    ``Circuit(7, 3)`` compare equal.
    """

    port_a: int
    port_b: int

    def __post_init__(self) -> None:
        if self.port_a == self.port_b:
            raise CircuitError("a circuit cannot loop a port back to itself")
        if self.port_a < 0 or self.port_b < 0:
            raise CircuitError("circuit ports must be non-negative")
        if self.port_a > self.port_b:
            low, high = self.port_b, self.port_a
            object.__setattr__(self, "port_a", low)
            object.__setattr__(self, "port_b", high)
        # Precomputed hash: circuits are dictionary keys all over the control
        # plane (installed sets, busy maps, per-circuit flow loads), and the
        # generated dataclass hash re-tuples the ports on every lookup.
        object.__setattr__(self, "_hash", hash((self.port_a, self.port_b)))

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    @property
    def ports(self) -> Tuple[int, int]:
        """The (low, high) port pair."""
        return (self.port_a, self.port_b)

    def uses_port(self, port: int) -> bool:
        """Return whether this circuit terminates on ``port``."""
        return port in (self.port_a, self.port_b)

    def __str__(self) -> str:
        return f"{self.port_a}<->{self.port_b}"


def _normalize(circuits: Iterable[Circuit]) -> FrozenSet[Circuit]:
    return frozenset(circuits)


@dataclass(frozen=True)
class CircuitConfiguration:
    """An immutable set of circuits forming one crossbar configuration.

    A configuration is *valid* only if no port is used by more than one
    circuit; validity is checked at construction time.
    """

    circuits: FrozenSet[Circuit]

    def __init__(self, circuits: Iterable[Circuit] = ()) -> None:
        normalized = _normalize(circuits)
        used: Set[int] = set()
        for circuit in normalized:
            for port in circuit.ports:
                if port in used:
                    raise CircuitConflictError(
                        f"port {port} is used by more than one circuit"
                    )
                used.add(port)
        object.__setattr__(self, "circuits", normalized)

    @property
    def ports_in_use(self) -> FrozenSet[int]:
        """All ports terminated by some circuit in this configuration."""
        return frozenset(
            port for circuit in self.circuits for port in circuit.ports
        )

    @property
    def num_circuits(self) -> int:
        """Number of circuits in the configuration."""
        return len(self.circuits)

    def peer_of(self, port: int) -> Optional[int]:
        """Return the port connected to ``port``, or ``None`` if unconnected."""
        for circuit in self.circuits:
            if circuit.port_a == port:
                return circuit.port_b
            if circuit.port_b == port:
                return circuit.port_a
        return None

    def contains(self, circuit: Circuit) -> bool:
        """Return whether ``circuit`` is part of this configuration."""
        return circuit in self.circuits

    def union(self, other: "CircuitConfiguration") -> "CircuitConfiguration":
        """Merge two configurations; raises on port conflicts."""
        return CircuitConfiguration(self.circuits | other.circuits)

    def difference(self, other: "CircuitConfiguration") -> "CircuitConfiguration":
        """Return the circuits of ``self`` that are not in ``other``."""
        return CircuitConfiguration(self.circuits - other.circuits)

    def conflicts_with(self, other: "CircuitConfiguration") -> FrozenSet[int]:
        """Return ports that would be double-booked by merging with ``other``.

        A port is *not* a conflict if both configurations connect it to the
        same peer (the circuit is simply shared).
        """
        conflicts: Set[int] = set()
        for port in self.ports_in_use & other.ports_in_use:
            if self.peer_of(port) != other.peer_of(port):
                conflicts.add(port)
        return frozenset(conflicts)

    def delta(
        self, target: "CircuitConfiguration"
    ) -> Tuple[FrozenSet[Circuit], FrozenSet[Circuit]]:
        """Return ``(to_tear_down, to_set_up)`` to move from ``self`` to ``target``."""
        tear_down = self.circuits - target.circuits
        set_up = target.circuits - self.circuits
        return frozenset(tear_down), frozenset(set_up)

    def __len__(self) -> int:
        return len(self.circuits)

    def __iter__(self):
        return iter(sorted(self.circuits, key=lambda c: c.ports))

    def __str__(self) -> str:
        body = ", ".join(str(c) for c in self)
        return f"{{{body}}}"


EMPTY_CONFIGURATION = CircuitConfiguration(())


class OpticalCircuitSwitch:
    """A single OCS crossbar with conflict-checked circuit state.

    Parameters
    ----------
    name:
        Unique switch name (e.g. ``"rail0.ocs0"``).
    technology:
        The OCS technology, which supplies the radix and switching time.
    """

    def __init__(
        self, name: str, technology: OCSTechnology = PIEZO_POLATIS
    ) -> None:
        self.name = name
        self.technology = technology
        self._port_to_peer: Dict[int, int] = {}
        self._reconfiguration_count = 0
        self._failed_ports: Set[int] = set()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def radix(self) -> int:
        """Number of ports on the crossbar."""
        return self.technology.radix

    @property
    def reconfiguration_time(self) -> float:
        """Technology switching time in seconds."""
        return self.technology.reconfiguration_time

    @property
    def reconfiguration_count(self) -> int:
        """Number of reconfiguration operations applied so far."""
        return self._reconfiguration_count

    @property
    def installed(self) -> CircuitConfiguration:
        """The currently installed circuit configuration."""
        circuits = {
            Circuit(a, b) for a, b in self._port_to_peer.items() if a < b
        }
        return CircuitConfiguration(circuits)

    def peer_of(self, port: int) -> Optional[int]:
        """Return the port currently circuit-connected to ``port``."""
        self._check_port(port)
        return self._port_to_peer.get(port)

    def is_connected(self, port_a: int, port_b: int) -> bool:
        """Return whether a circuit between the two ports is installed."""
        self._check_port(port_a)
        self._check_port(port_b)
        return self._port_to_peer.get(port_a) == port_b

    def free_ports(self) -> List[int]:
        """Return the healthy ports not used by any installed circuit."""
        return [
            p
            for p in range(self.radix)
            if p not in self._port_to_peer and p not in self._failed_ports
        ]

    @property
    def failed_ports(self) -> FrozenSet[int]:
        """Ports taken out of service by fault injection."""
        return frozenset(self._failed_ports)

    def port_failed(self, port: int) -> bool:
        """Whether ``port`` has failed (fault injection)."""
        self._check_port(port)
        return port in self._failed_ports

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def fail_port(self, port: int) -> Optional[Circuit]:
        """Take ``port`` out of service permanently (fault injection).

        Any circuit terminating on the port is torn down and returned;
        further installs touching the port raise :class:`CircuitError`.  A
        failed port stays failed across :meth:`clear` — it is a hardware
        fault, not crossbar state.
        """
        self._check_port(port)
        self._failed_ports.add(port)
        peer = self._port_to_peer.get(port)
        if peer is None:
            return None
        victim = Circuit(port, peer)
        self.tear_down(victim)
        return victim

    def install(self, circuit: Circuit) -> None:
        """Install one circuit; raises :class:`CircuitConflictError` on conflict."""
        for port in circuit.ports:
            self._check_port(port)
            if port in self._failed_ports:
                raise CircuitError(
                    f"{self.name}: port {port} has failed and cannot carry "
                    f"circuit {circuit}"
                )
            peer = self._port_to_peer.get(port)
            if peer is not None and not circuit.uses_port(peer):
                raise CircuitConflictError(
                    f"{self.name}: port {port} already connected to {peer}"
                )
        self._port_to_peer[circuit.port_a] = circuit.port_b
        self._port_to_peer[circuit.port_b] = circuit.port_a

    def tear_down(self, circuit: Circuit) -> None:
        """Remove one installed circuit; raises if it is not installed."""
        if not self.is_connected(circuit.port_a, circuit.port_b):
            raise CircuitError(
                f"{self.name}: circuit {circuit} is not installed"
            )
        del self._port_to_peer[circuit.port_a]
        del self._port_to_peer[circuit.port_b]

    def apply(self, target: CircuitConfiguration) -> Tuple[int, int]:
        """Reconfigure the crossbar to exactly ``target``.

        Returns ``(num_torn_down, num_set_up)``.  Circuits present in both the
        installed and the target configuration are left untouched (their
        traffic is not disturbed), matching the paper's Objective 3.
        """
        for circuit in target.circuits:
            for port in circuit.ports:
                self._check_port(port)
        tear_down, set_up = self.installed.delta(target)
        for circuit in tear_down:
            self.tear_down(circuit)
        for circuit in set_up:
            self.install(circuit)
        if tear_down or set_up:
            self._reconfiguration_count += 1
        return len(tear_down), len(set_up)

    def clear(self) -> None:
        """Tear down every installed circuit."""
        self._port_to_peer.clear()

    def _check_port(self, port: int) -> None:
        if not 0 <= port < self.radix:
            raise CircuitError(
                f"{self.name}: port {port} outside radix {self.radix}"
            )

    def __repr__(self) -> str:
        return (
            f"OpticalCircuitSwitch(name={self.name!r}, "
            f"technology={self.technology.name!r}, "
            f"circuits={len(self.installed)})"
        )
