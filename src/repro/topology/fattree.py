"""Three-tier fat-tree (folded Clos) fabric builder — the second Fig. 7 baseline.

The fat-tree here is the classical full-bisection k-ary design [Al-Fares et
al.]: with k-port switches it supports ``k^3/4`` hosts using ``5k^2/4``
switches (``k^2/4`` core + ``k`` pods of ``k/2`` edge and ``k/2`` aggregation
switches each).  For clusters smaller than a full fat-tree the builder uses the
standard "sliced" construction: only as many pods (and the proportional share
of core switches) as needed are provisioned, while keeping full bisection for
the provisioned part.

For Fig. 7 only the inventory matters; the graph construction is provided so
the same simulator can run packet-fabric baselines end-to-end.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import TopologyError
from .base import (
    LinkKind,
    NodeKind,
    Topology,
    nic_port_node_name,
    switch_node_name,
)
from .devices import ClusterSpec
from .railopt import FabricInventory, add_host_ports, _switch_latency
from .scaleup import add_scaleup_domains


@dataclass
class FatTreeFabric:
    """A fat-tree fabric: topology plus inventory and tier sizes."""

    cluster: ClusterSpec
    topology: Topology
    inventory: FabricInventory
    edge_switches: int
    aggregation_switches: int
    core_switches: int


def _fattree_counts(num_endpoints: int, radix: int) -> tuple:
    """Return (edge, agg, core, edge_agg_links, agg_core_links) switch counts.

    Uses the sliced full-bisection construction: hosts attach to edge switches
    at ``radix/2`` per switch; every edge switch has ``radix/2`` uplinks, and
    the aggregation and core tiers are sized to carry them at 1:1.
    """
    if num_endpoints <= 0:
        raise TopologyError("fat-tree needs at least one endpoint")
    half = radix // 2
    edge = max(1, math.ceil(num_endpoints / half))
    # Pods of `half` edge switches; partially-filled last pod allowed.
    pods = max(1, math.ceil(edge / half))
    agg = pods * half if pods > 1 else edge
    edge_agg_links = edge * half
    # Core sized for the aggregate uplink bandwidth of all aggregation switches.
    agg_core_links = agg * half if pods > 1 else 0
    core = max(0, math.ceil(agg_core_links / radix)) if pods > 1 else 0
    if pods == 1:
        # A single pod degenerates to a 2-tier leaf/spine.
        core = 0
        agg_core_links = 0
        agg = max(1, math.ceil(edge_agg_links / radix))
    return edge, agg, core, edge_agg_links, agg_core_links


def _fattree_bill_of_materials(
    num_endpoints: int, radix: int, oversubscription: float
) -> FabricInventory:
    """Shared inventory counting for the builder and the closed form.

    An oversubscribed tree provisions proportionally fewer uplink fibers
    (that is where the cost saving comes from).
    """
    if oversubscription < 1.0:
        raise TopologyError("oversubscription must be >= 1")
    uplink_scale = 1.0 / oversubscription
    edge, agg, core, edge_agg_links, agg_core_links = _fattree_counts(
        num_endpoints, radix
    )
    host_links = num_endpoints
    inter_switch_links = math.ceil(edge_agg_links * uplink_scale) + math.ceil(
        agg_core_links * uplink_scale
    )
    return FabricInventory(
        electrical_switches=edge + agg + core,
        ocs_ports=0,
        transceivers=2 * host_links + 2 * inter_switch_links,
        links=host_links + inter_switch_links,
    )


def fat_tree_inventory(
    cluster: ClusterSpec, oversubscription: float = 1.0
) -> FabricInventory:
    """Closed-form fat-tree bill of materials for the Fig. 7 sweeps."""
    return _fattree_bill_of_materials(
        cluster.num_gpus * cluster.nic_port_config.num_ports,
        cluster.electrical_switch.radix,
        oversubscription,
    )


def build_fat_tree_fabric(
    cluster: ClusterSpec, oversubscription: float = 1.0
) -> FatTreeFabric:
    """Build the fat-tree topology graph for ``cluster``.

    The graph aggregates parallel uplinks between a pair of switches into a
    single fat link (bandwidth scaled accordingly) to keep the multigraph
    small; the inventory still counts individual fibers and transceivers.

    ``oversubscription`` divides the inter-switch (edge–aggregation and
    aggregation–core) bandwidth, modeling the classic cost-reduced Clos where
    the host tier keeps its line rate but the upper tiers are provisioned at
    ``1:oversubscription`` — with proportionally fewer uplink fibers and
    transceivers in the inventory.  The default 1.0 keeps full bisection.
    """
    if oversubscription < 1.0:
        raise TopologyError("oversubscription must be >= 1")
    uplink_scale = 1.0 / oversubscription
    radix = cluster.electrical_switch.radix
    port_bandwidth = cluster.nic_port_config.port_bandwidth
    switch_port_bw = cluster.electrical_switch.port_bandwidth
    ports_per_gpu = cluster.nic_port_config.num_ports
    num_endpoints = cluster.num_gpus * ports_per_gpu
    edge, agg, core, edge_agg_links, agg_core_links = _fattree_counts(
        num_endpoints, radix
    )

    topology = Topology(name=f"fat-tree[{cluster.num_gpus}]")
    add_scaleup_domains(topology, cluster)
    add_host_ports(topology, cluster)

    half = radix // 2
    for index in range(edge):
        topology.add_node(
            switch_node_name("edge", index), NodeKind.ELECTRICAL_SWITCH, tier="edge"
        )
    for index in range(agg):
        topology.add_node(
            switch_node_name("agg", index), NodeKind.ELECTRICAL_SWITCH, tier="agg"
        )
    for index in range(core):
        topology.add_node(
            switch_node_name("core", index), NodeKind.ELECTRICAL_SWITCH, tier="core"
        )

    # Hosts to edge switches, round-robin in half-radix blocks.
    endpoint = 0
    for gpu_id in range(cluster.num_gpus):
        for port in range(ports_per_gpu):
            edge_index = endpoint // half
            topology.add_bidirectional_link(
                nic_port_node_name(gpu_id, port),
                switch_node_name("edge", edge_index),
                bandwidth=port_bandwidth,
                latency=_switch_latency(),
                kind=LinkKind.ELECTRICAL,
            )
            endpoint += 1

    # Edge to aggregation: connect each edge switch to every agg switch in its
    # pod (or all agg switches when there is a single pod).
    pods = max(1, math.ceil(edge / half))
    aggs_per_pod = agg // pods if pods > 1 else agg
    for edge_index in range(edge):
        pod = edge_index // half if pods > 1 else 0
        pod_aggs = (
            range(pod * aggs_per_pod, (pod + 1) * aggs_per_pod)
            if pods > 1
            else range(agg)
        )
        pod_aggs = list(pod_aggs)
        if not pod_aggs:
            continue
        per_agg_fibers = max(1, half // len(pod_aggs))
        for agg_index in pod_aggs:
            topology.add_bidirectional_link(
                switch_node_name("edge", edge_index),
                switch_node_name("agg", agg_index),
                bandwidth=switch_port_bw * per_agg_fibers * uplink_scale,
                latency=_switch_latency(),
                kind=LinkKind.ELECTRICAL,
            )

    # Aggregation to core.
    if core:
        per_core_fibers = max(1, (agg * half) // (agg * core)) if core else 1
        for agg_index in range(agg):
            for core_index in range(core):
                topology.add_bidirectional_link(
                    switch_node_name("agg", agg_index),
                    switch_node_name("core", core_index),
                    bandwidth=switch_port_bw * per_core_fibers * uplink_scale,
                    latency=_switch_latency(),
                    kind=LinkKind.ELECTRICAL,
                )

    inventory = _fattree_bill_of_materials(num_endpoints, radix, oversubscription)
    return FatTreeFabric(
        cluster=cluster,
        topology=topology,
        inventory=inventory,
        edge_switches=edge,
        aggregation_switches=agg,
        core_switches=core,
    )
