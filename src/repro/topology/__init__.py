"""Network topology substrates: devices, fabrics, and optical circuit switches.

The subpackage provides everything below the control plane:

* :mod:`repro.topology.devices` — hardware profiles (GPUs, scale-up domains,
  NICs, transceivers, electrical switches, OCS technologies from Table 3) and
  the :class:`~repro.topology.devices.ClusterSpec` cluster description.
* :mod:`repro.topology.base` — the generic topology graph.
* :mod:`repro.topology.scaleup` — scale-up (NVLink/NVSwitch) domains.
* :mod:`repro.topology.railopt` — the electrical rail-optimized baseline.
* :mod:`repro.topology.electrical` — fully-connected rail graph backing the
  electrical backend's flow-level network mode.
* :mod:`repro.topology.fattree` — the fat-tree baseline.
* :mod:`repro.topology.photonic` — the proposed photonic rail fabric.
* :mod:`repro.topology.ocs` — the OCS crossbar / circuit state machine.
* :mod:`repro.topology.nic` — NIC port partitioning (constraint C3).
"""

from .base import Link, LinkKind, Node, NodeKind, Topology, gpu_node_name, nic_port_node_name
from .devices import (
    CONNECTX7,
    DGX_H100,
    DGX_H200,
    GB200_NVL72,
    GPU_CATALOG,
    NIC_CATALOG,
    OCS_CATALOG,
    OCS_TECHNOLOGIES,
    PERLMUTTER_NODE,
    PIEZO_POLATIS,
    SCALEUP_CATALOG,
    TOMAHAWK4_64X400G,
    TRANSCEIVER_400G,
    ClusterSpec,
    ElectricalSwitchSpec,
    GPUSpec,
    NICPortConfig,
    NICSpec,
    OCSTechnology,
    ScaleUpDomainSpec,
    TransceiverSpec,
    dgx_h200_cluster,
    perlmutter_testbed,
)
from .electrical import build_fully_connected_rail_topology
from .fattree import FatTreeFabric, build_fat_tree_fabric, fat_tree_inventory
from .nic import NICAllocation, PortAssignment, allocate_ports, ports_required
from .ocs import Circuit, CircuitConfiguration, EMPTY_CONFIGURATION, OpticalCircuitSwitch
from .photonic import (
    PhotonicRail,
    PhotonicRailFabric,
    RailEndpoint,
    build_photonic_rail_fabric,
    photonic_rail_inventory,
)
from .railopt import (
    FabricInventory,
    RailOptimizedFabric,
    build_rail_optimized_fabric,
    rail_optimized_inventory,
)
from .scaleup import build_scaleup_only_topology

__all__ = [
    "Circuit",
    "CircuitConfiguration",
    "ClusterSpec",
    "CONNECTX7",
    "DGX_H100",
    "DGX_H200",
    "ElectricalSwitchSpec",
    "EMPTY_CONFIGURATION",
    "FabricInventory",
    "FatTreeFabric",
    "GB200_NVL72",
    "GPUSpec",
    "GPU_CATALOG",
    "Link",
    "LinkKind",
    "NICAllocation",
    "NICPortConfig",
    "NICSpec",
    "NIC_CATALOG",
    "Node",
    "NodeKind",
    "OCSTechnology",
    "OCS_CATALOG",
    "OCS_TECHNOLOGIES",
    "OpticalCircuitSwitch",
    "PERLMUTTER_NODE",
    "PIEZO_POLATIS",
    "PhotonicRail",
    "PhotonicRailFabric",
    "PortAssignment",
    "RailEndpoint",
    "RailOptimizedFabric",
    "SCALEUP_CATALOG",
    "ScaleUpDomainSpec",
    "TOMAHAWK4_64X400G",
    "TRANSCEIVER_400G",
    "Topology",
    "TransceiverSpec",
    "allocate_ports",
    "build_fat_tree_fabric",
    "build_fully_connected_rail_topology",
    "build_photonic_rail_fabric",
    "build_rail_optimized_fabric",
    "build_scaleup_only_topology",
    "dgx_h200_cluster",
    "fat_tree_inventory",
    "gpu_node_name",
    "nic_port_node_name",
    "perlmutter_testbed",
    "photonic_rail_inventory",
    "ports_required",
    "rail_optimized_inventory",
]
