"""Expansion of collectives into per-step point-to-point transfer schedules.

The flow-level simulator can either charge a collective its analytic
alpha–beta time (fast, used for large sweeps) or expand it into the individual
point-to-point transfers of the underlying algorithm and simulate those as
flows (used when link sharing between concurrent collectives matters).  This
module provides the expansion machinery shared by the ring, tree, and AllToAll
algorithms.

A schedule is a list of :class:`TransferStep` objects; each step is a set of
:class:`Transfer` objects that may proceed concurrently, and a step only starts
after every transfer of the previous step completed (the synchronous-algorithm
approximation used by most collective simulators).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Tuple

from ..errors import ConfigurationError
from .primitives import CollectiveOp, CollectiveType


@dataclass(frozen=True)
class Transfer:
    """A single point-to-point transfer: ``size_bytes`` from ``src`` to ``dst``."""

    src: int
    dst: int
    size_bytes: float

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ConfigurationError("transfer endpoints must differ")
        if self.size_bytes < 0:
            raise ConfigurationError("transfer size must be non-negative")


@dataclass(frozen=True)
class TransferStep:
    """A set of transfers that proceed concurrently in one algorithm step."""

    transfers: Tuple[Transfer, ...]

    @property
    def total_bytes(self) -> float:
        """Total bytes moved in this step."""
        return sum(t.size_bytes for t in self.transfers)


Schedule = List[TransferStep]


def ring_schedule(op: CollectiveOp) -> Schedule:
    """Expand ``op`` into the standard ring-algorithm transfer schedule.

    The ring order is the order of ``op.group``.  Each rank sends chunks of
    ``size / n`` bytes to its successor; AllReduce performs a reduce-scatter
    pass followed by an all-gather pass (2(n-1) steps), AllGather and
    ReduceScatter perform n-1 steps each.
    """
    ranks = list(op.group)
    n = len(ranks)
    if n <= 1:
        return []
    if op.collective == CollectiveType.SEND_RECV:
        return [TransferStep((Transfer(ranks[0], ranks[1], op.size_bytes),))]
    if op.collective == CollectiveType.BARRIER:
        return [
            TransferStep(
                tuple(
                    Transfer(ranks[i], ranks[(i + 1) % n], 0.0) for i in range(n)
                )
            )
        ]
    chunk = op.size_bytes / n
    if op.collective == CollectiveType.ALL_REDUCE:
        num_steps = 2 * (n - 1)
    elif op.collective in (
        CollectiveType.ALL_GATHER,
        CollectiveType.REDUCE_SCATTER,
        CollectiveType.ALL_TO_ALL,
        CollectiveType.BROADCAST,
        CollectiveType.REDUCE,
    ):
        num_steps = n - 1
    else:
        raise ConfigurationError(f"unknown collective {op.collective!r}")

    if op.collective == CollectiveType.ALL_GATHER:
        # Each rank circulates its full shard: per-step chunk is size_bytes.
        chunk = op.size_bytes
    if op.collective in (CollectiveType.BROADCAST, CollectiveType.REDUCE):
        chunk = op.size_bytes

    schedule: Schedule = []
    for _ in range(num_steps):
        transfers = tuple(
            Transfer(ranks[i], ranks[(i + 1) % n], chunk) for i in range(n)
        )
        schedule.append(TransferStep(transfers))
    return schedule


def direct_alltoall_schedule(op: CollectiveOp) -> Schedule:
    """Expand an AllToAll into ``n-1`` pairwise-exchange steps (direct algorithm).

    In step ``s`` every rank ``i`` sends its ``(i ^ s)``-th chunk-equivalent to
    rank ``(i + s) mod n`` — we use the rotation (linear shift) pattern, which
    keeps every step a perfect matching so the degree requirement is 1 per
    step but ``n-1`` distinct neighbors overall (paper constraint C1: not
    implementable on a static ring without forwarding).
    """
    if op.collective != CollectiveType.ALL_TO_ALL:
        raise ConfigurationError("direct_alltoall_schedule only handles AllToAll")
    ranks = list(op.group)
    n = len(ranks)
    if n <= 1:
        return []
    chunk = op.size_bytes / n
    schedule: Schedule = []
    for shift in range(1, n):
        transfers = tuple(
            Transfer(ranks[i], ranks[(i + shift) % n], chunk) for i in range(n)
        )
        schedule.append(TransferStep(transfers))
    return schedule


def tree_schedule(op: CollectiveOp) -> Schedule:
    """Expand ``op`` into a recursive-doubling/halving schedule (log2(n) steps).

    Only defined for power-of-two group sizes; callers on the electrical
    baseline fall back to :func:`ring_schedule` otherwise.  Provided to back
    the C1 discussion — these schedules require a node degree of log2(n)
    distinct neighbors over the course of the algorithm.
    """
    ranks = list(op.group)
    n = len(ranks)
    if n <= 1:
        return []
    if n & (n - 1):
        raise ConfigurationError("tree_schedule requires a power-of-two group size")
    if op.collective == CollectiveType.ALL_REDUCE:
        per_step_bytes = op.size_bytes
        num_rounds = n.bit_length() - 1
    elif op.collective in (CollectiveType.ALL_GATHER, CollectiveType.REDUCE_SCATTER):
        per_step_bytes = op.size_bytes / 2.0
        num_rounds = n.bit_length() - 1
    else:
        raise ConfigurationError(
            f"tree_schedule does not handle {op.collective!r}; use ring_schedule"
        )
    schedule: Schedule = []
    for round_index in range(num_rounds):
        distance = 1 << round_index
        transfers = []
        for i in range(n):
            peer = i ^ distance
            transfers.append(Transfer(ranks[i], ranks[peer], per_step_bytes))
        schedule.append(TransferStep(tuple(transfers)))
    return schedule


def expand(op: CollectiveOp, prefer_tree: bool = False) -> Schedule:
    """Expand ``op`` with the appropriate algorithm.

    ``prefer_tree=True`` picks the latency-optimized schedule when the group
    size is a power of two (electrical rails only); otherwise the ring
    schedule is used, and AllToAll always uses the direct pairwise schedule.
    """
    if op.collective == CollectiveType.ALL_TO_ALL:
        return direct_alltoall_schedule(op)
    if prefer_tree and op.group_size >= 2 and not (op.group_size & (op.group_size - 1)):
        if op.collective in (
            CollectiveType.ALL_REDUCE,
            CollectiveType.ALL_GATHER,
            CollectiveType.REDUCE_SCATTER,
        ):
            return tree_schedule(op)
    return ring_schedule(op)


#: Memoized expansions, keyed by everything the schedule depends on: the
#: collective type, the exact rank group, the payload size, and the algorithm
#: choice.  Tags, parallelism labels, and DAG op ids deliberately do not
#: participate — two FSDP layers with the same group and size share one
#: schedule object.  Bounded LRU so pathological sweeps cannot hoard memory.
_EXPANSION_CACHE: "OrderedDict[Tuple[CollectiveType, Tuple[int, ...], float, bool], Schedule]" = (
    OrderedDict()
)
_EXPANSION_CACHE_MAX = 1024


def expand_cached(op: CollectiveOp, prefer_tree: bool = False) -> Schedule:
    """Memoized :func:`expand` keyed on ``(collective, group, size)``.

    The returned schedule is shared between callers and across iterations;
    treat it as immutable.  The large-scale flow simulations re-expand the
    same (group, size) shape thousands of times per run — once per DAG
    operation per iteration — and expansion is O(steps × group size), so the
    cache turns a quadratic per-iteration cost into a lookup.
    """
    key = (op.collective, op.group, op.size_bytes, prefer_tree)
    cached = _EXPANSION_CACHE.get(key)
    if cached is not None:
        _EXPANSION_CACHE.move_to_end(key)
        return cached
    schedule = expand(op, prefer_tree=prefer_tree)
    _EXPANSION_CACHE[key] = schedule
    if len(_EXPANSION_CACHE) > _EXPANSION_CACHE_MAX:
        _EXPANSION_CACHE.popitem(last=False)
    return schedule


def expansion_cache_clear() -> None:
    """Drop all memoized expansions (test isolation helper)."""
    _EXPANSION_CACHE.clear()


def distinct_neighbors(schedule: Schedule, rank: int) -> int:
    """Number of distinct peers ``rank`` exchanges data with across a schedule.

    This is the degree requirement the paper's C1/C2 constraints are about.
    """
    peers = set()
    for step in schedule:
        for transfer in step.transfers:
            if transfer.src == rank:
                peers.add(transfer.dst)
            elif transfer.dst == rank:
                peers.add(transfer.src)
    return len(peers)
