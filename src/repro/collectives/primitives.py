"""Collective communication primitives and their traffic-volume accounting.

The paper's Table 2 characterizes each parallelism axis by the collectives it
issues (AllReduce, AllGather, ReduceScatter, AllToAll, Send/Recv), their
frequency (per layer / per operator / per micro-batch), and their payload.
This module defines:

* :class:`CollectiveType` — the collective operations used by ML parallelisms;
* :class:`CollectiveOp` — one instance of a collective issued by a rank group,
  with payload size and issuing metadata;
* per-collective formulas for the number of bytes each rank must send and
  receive under the bandwidth-optimal (ring / pairwise) algorithms, which both
  the analytic cost model and the flow-level expansion build on.

Size conventions follow NCCL: ``size_bytes`` is the size of the *input buffer
per rank* (e.g. the local gradient shard for ReduceScatter, the full gradient
for AllReduce, the local shard to be gathered for AllGather).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Dict, FrozenSet, Tuple

from ..errors import ConfigurationError


class CollectiveType(str, Enum):
    """Collective operations issued by ML parallelism strategies."""

    ALL_REDUCE = "all_reduce"
    ALL_GATHER = "all_gather"
    REDUCE_SCATTER = "reduce_scatter"
    ALL_TO_ALL = "all_to_all"
    SEND_RECV = "send_recv"
    BROADCAST = "broadcast"
    REDUCE = "reduce"
    BARRIER = "barrier"

    @property
    def short_name(self) -> str:
        """The abbreviation used in the paper's tables (AR, AG, RS, ...)."""
        return _SHORT_NAMES[self]


_SHORT_NAMES: Dict[CollectiveType, str] = {
    CollectiveType.ALL_REDUCE: "AR",
    CollectiveType.ALL_GATHER: "AG",
    CollectiveType.REDUCE_SCATTER: "RS",
    CollectiveType.ALL_TO_ALL: "A2A",
    CollectiveType.SEND_RECV: "SR",
    CollectiveType.BROADCAST: "BC",
    CollectiveType.REDUCE: "RD",
    CollectiveType.BARRIER: "BAR",
}


_COUNTER = itertools.count()


@dataclass(frozen=True)
class CollectiveOp:
    """One collective operation issued over a communication group.

    Attributes
    ----------
    collective:
        The collective type.
    group:
        Global GPU ranks participating, in group order (ring order for ring
        algorithms; (src, dst) for Send/Recv).
    size_bytes:
        Per-rank input payload in bytes (see module docstring for semantics).
    parallelism:
        The parallelism axis that issued the collective (``"dp"``, ``"pp"``,
        ``"tp"``, ``"cp"``, ``"ep"``); used by Opus to detect parallelism
        shifts.
    tag:
        Free-form description (e.g. ``"layer3.allgather"``) for traces.
    op_id:
        Unique id assigned at construction.
    """

    collective: CollectiveType
    group: Tuple[int, ...]
    size_bytes: float
    parallelism: str = ""
    tag: str = ""
    op_id: int = field(default_factory=lambda: next(_COUNTER))

    def __post_init__(self) -> None:
        if len(self.group) < 1:
            raise ConfigurationError("a collective needs at least one rank")
        if len(set(self.group)) != len(self.group):
            raise ConfigurationError("collective group ranks must be distinct")
        if self.size_bytes < 0:
            raise ConfigurationError("collective size must be non-negative")
        if self.collective == CollectiveType.SEND_RECV and len(self.group) != 2:
            raise ConfigurationError("Send/Recv requires exactly two ranks")

    @property
    def group_size(self) -> int:
        """Number of participating ranks."""
        return len(self.group)

    @property
    def group_key(self) -> FrozenSet[int]:
        """Order-insensitive identity of the communication group."""
        return frozenset(self.group)

    def with_size(self, size_bytes: float) -> "CollectiveOp":
        """Return a copy of this op with a different payload size."""
        return replace(self, size_bytes=size_bytes, op_id=next(_COUNTER))

    def __str__(self) -> str:
        return (
            f"{self.collective.short_name}[{self.parallelism or '?'}]"
            f"(n={self.group_size}, {self.size_bytes / 1e6:.1f} MB)"
        )


def bytes_on_wire_per_rank(collective: CollectiveType, size_bytes: float, group_size: int) -> float:
    """Bytes each rank must *send* for one collective under ring/pairwise algorithms.

    These are the standard bandwidth-optimal volumes (Thakur & Gropp [69];
    NCCL documentation):

    * AllReduce: ``2 * (n-1)/n * size``  (ReduceScatter + AllGather phases)
    * AllGather / ReduceScatter: ``(n-1)/n * size_total`` where ``size_total``
      is ``n * size`` for AllGather of per-rank shards of ``size`` bytes; per
      the module's per-rank-input convention this equals ``(n-1) * size`` for
      AllGather and ``(n-1)/n * size`` for ReduceScatter of an input of
      ``size`` bytes.
    * AllToAll: ``(n-1)/n * size`` (each rank keeps 1/n of its buffer).
    * Send/Recv, Broadcast, Reduce: ``size``.
    * Barrier: 0 bytes (latency only).
    """
    if group_size < 1:
        raise ConfigurationError("group_size must be positive")
    if group_size == 1:
        return 0.0
    n = float(group_size)
    if collective == CollectiveType.ALL_REDUCE:
        return 2.0 * (n - 1.0) / n * size_bytes
    if collective == CollectiveType.ALL_GATHER:
        return (n - 1.0) * size_bytes
    if collective == CollectiveType.REDUCE_SCATTER:
        return (n - 1.0) / n * size_bytes
    if collective == CollectiveType.ALL_TO_ALL:
        return (n - 1.0) / n * size_bytes
    if collective in (CollectiveType.SEND_RECV, CollectiveType.BROADCAST, CollectiveType.REDUCE):
        return float(size_bytes)
    if collective == CollectiveType.BARRIER:
        return 0.0
    raise ConfigurationError(f"unknown collective {collective!r}")


def total_traffic_bytes(op: CollectiveOp) -> float:
    """Total bytes crossing the network for one collective (all ranks summed)."""
    per_rank = bytes_on_wire_per_rank(op.collective, op.size_bytes, op.group_size)
    if op.collective == CollectiveType.SEND_RECV:
        # Only the sender transmits.
        return per_rank
    return per_rank * op.group_size


def num_ring_steps(collective: CollectiveType, group_size: int) -> int:
    """Number of ring steps the bandwidth-optimal algorithm uses."""
    if group_size <= 1:
        return 0
    n = group_size
    if collective == CollectiveType.ALL_REDUCE:
        return 2 * (n - 1)
    if collective in (CollectiveType.ALL_GATHER, CollectiveType.REDUCE_SCATTER):
        return n - 1
    if collective == CollectiveType.ALL_TO_ALL:
        return n - 1
    if collective in (CollectiveType.SEND_RECV, CollectiveType.BROADCAST, CollectiveType.REDUCE):
        return 1
    if collective == CollectiveType.BARRIER:
        return 1
    raise ConfigurationError(f"unknown collective {collective!r}")


def required_degree(collective: CollectiveType, group_size: int) -> int:
    """Node degree (simultaneous neighbors) a ring implementation needs.

    This is the quantity behind the paper's constraints C1–C3: a ring needs
    two neighbors per rank (one for a two-member group), AllToAll needs
    ``group_size - 1`` for the direct algorithm (or 2 when run over a ring
    with forwarding).
    """
    if group_size <= 1:
        return 0
    if group_size == 2:
        return 1
    if collective == CollectiveType.ALL_TO_ALL:
        return group_size - 1
    return 2
