"""Collective communication primitives, algorithms, and cost models.

* :mod:`repro.collectives.primitives` — collective types, per-op metadata, and
  wire-traffic formulas (backs Table 2).
* :mod:`repro.collectives.cost_model` — alpha–beta ring and tree cost models.
* :mod:`repro.collectives.schedule` — expansion of collectives into per-step
  point-to-point transfer schedules (ring, recursive doubling, direct
  AllToAll), used by the flow-level simulator and the C1/C2 degree analyses.
"""

from .cost_model import (
    DEFAULT_COST_MODEL,
    LinkParameters,
    RingCostModel,
    TreeCostModel,
    busbw,
    collective_time,
)
from .primitives import (
    CollectiveOp,
    CollectiveType,
    bytes_on_wire_per_rank,
    num_ring_steps,
    required_degree,
    total_traffic_bytes,
)
from .schedule import (
    Schedule,
    Transfer,
    TransferStep,
    direct_alltoall_schedule,
    distinct_neighbors,
    expand,
    ring_schedule,
    tree_schedule,
)

__all__ = [
    "CollectiveOp",
    "CollectiveType",
    "DEFAULT_COST_MODEL",
    "LinkParameters",
    "RingCostModel",
    "Schedule",
    "Transfer",
    "TransferStep",
    "TreeCostModel",
    "busbw",
    "bytes_on_wire_per_rank",
    "collective_time",
    "direct_alltoall_schedule",
    "distinct_neighbors",
    "expand",
    "num_ring_steps",
    "required_degree",
    "ring_schedule",
    "total_traffic_bytes",
    "tree_schedule",
]
