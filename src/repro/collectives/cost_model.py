"""Alpha–beta cost models for collective operations.

The simulator and the analysis code both need an estimate of how long a
collective takes on a given set of links.  We use the classical alpha–beta
(latency–bandwidth) model, parameterized per algorithm:

* ``alpha`` — per-message latency (link propagation + software launch);
* ``beta``  — inverse bandwidth of the bottleneck link (seconds per byte).

For a ring algorithm over ``n`` ranks with per-rank payload ``S``:

* AllReduce:      ``2(n-1) * alpha + 2 S (n-1)/n * beta``
* AllGather:      ``(n-1) * alpha + S (n-1) * beta``
* ReduceScatter:  ``(n-1) * alpha + S (n-1)/n * beta``
* AllToAll (ring/pairwise): ``(n-1) * alpha + S (n-1)/n * beta``
* Send/Recv:      ``alpha + S * beta``

Latency-optimal algorithms (tree, recursive doubling) replace the ``n-1``
latency term with ``log2(n)`` but send more data per rank; they are provided
for the C1 discussion (photonic rails cannot run them because of the degree
constraint) and for the electrical baseline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError
from .primitives import CollectiveOp, CollectiveType, bytes_on_wire_per_rank, num_ring_steps


@dataclass(frozen=True)
class LinkParameters:
    """Alpha–beta parameters of the links a collective runs over.

    Attributes
    ----------
    bandwidth:
        Per-rank injection bandwidth available to the collective, bytes/s.
    latency:
        One-hop latency in seconds (propagation + NIC + software).
    per_message_overhead:
        Fixed software overhead added once per algorithm step (kernel launch,
        protocol handshake), seconds.
    """

    bandwidth: float
    latency: float = 2e-6
    per_message_overhead: float = 5e-6

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ConfigurationError("bandwidth must be positive")
        if self.latency < 0 or self.per_message_overhead < 0:
            raise ConfigurationError("latencies must be non-negative")

    @property
    def alpha(self) -> float:
        """Per-step latency term (seconds)."""
        return self.latency + self.per_message_overhead

    @property
    def beta(self) -> float:
        """Inverse bandwidth (seconds per byte)."""
        return 1.0 / self.bandwidth


class RingCostModel:
    """Bandwidth-optimal ring algorithm cost model (the photonic-rail default)."""

    name = "ring"

    def collective_time(self, op: CollectiveOp, link: LinkParameters) -> float:
        """Estimated completion time of ``op`` over ``link`` in seconds."""
        if op.group_size <= 1:
            return 0.0
        steps = num_ring_steps(op.collective, op.group_size)
        wire_bytes = bytes_on_wire_per_rank(op.collective, op.size_bytes, op.group_size)
        return steps * link.alpha + wire_bytes * link.beta


class TreeCostModel:
    """Latency-optimized tree / recursive-doubling cost model.

    Only valid on fabrics with full connectivity (electrical rails); the
    photonic rail's degree constraint C1 rules it out.  AllReduce uses the
    two-tree construction [58]; AllGather/ReduceScatter use recursive
    doubling/halving [69].
    """

    name = "tree"

    def collective_time(self, op: CollectiveOp, link: LinkParameters) -> float:
        """Estimated completion time of ``op`` over ``link`` in seconds."""
        if op.group_size <= 1:
            return 0.0
        n = op.group_size
        rounds = max(1, math.ceil(math.log2(n)))
        wire_bytes = bytes_on_wire_per_rank(op.collective, op.size_bytes, op.group_size)
        if op.collective == CollectiveType.ALL_REDUCE:
            # Double binary tree: latency log2(n), bandwidth 2*S.
            return rounds * link.alpha + 2.0 * op.size_bytes * link.beta
        if op.collective in (
            CollectiveType.ALL_GATHER,
            CollectiveType.REDUCE_SCATTER,
            CollectiveType.ALL_TO_ALL,
        ):
            return rounds * link.alpha + wire_bytes * link.beta
        if op.collective in (
            CollectiveType.SEND_RECV,
            CollectiveType.BROADCAST,
            CollectiveType.REDUCE,
        ):
            return link.alpha + wire_bytes * link.beta
        if op.collective == CollectiveType.BARRIER:
            return rounds * link.alpha
        raise ConfigurationError(f"unknown collective {op.collective!r}")


#: Default cost model used by the simulator for scale-out (rail) collectives.
DEFAULT_COST_MODEL = RingCostModel()


def collective_time(
    op: CollectiveOp,
    bandwidth: float,
    latency: float = 2e-6,
    model: Optional[RingCostModel] = None,
) -> float:
    """Convenience wrapper: ring-model completion time at the given bandwidth."""
    link = LinkParameters(bandwidth=bandwidth, latency=latency)
    return (model or DEFAULT_COST_MODEL).collective_time(op, link)


def busbw(op: CollectiveOp, elapsed: float) -> float:
    """NCCL-style *bus bandwidth* achieved by a completed collective.

    Bus bandwidth normalizes the achieved algorithm bandwidth by the
    algorithm's traffic factor so that it is comparable across collectives and
    directly comparable to the link's line rate.
    """
    if elapsed <= 0:
        raise ConfigurationError("elapsed time must be positive")
    wire_bytes = bytes_on_wire_per_rank(op.collective, op.size_bytes, op.group_size)
    return wire_bytes / elapsed
