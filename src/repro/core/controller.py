"""The Opus controller: per-rail circuit state and reconfiguration timing.

The controller is the component of Fig. 6 that "orchestrates each rail's
OCSes to perform reconfiguration upon receiving requests".  It owns, per rail:

* the installed circuits and the time each becomes usable (a circuit installed
  by a switching event is usable when the event finishes);
* the time each installed circuit is busy carrying traffic (a reconfiguration
  that would tear a busy circuit waits for it to drain — Objective 3);
* the serialization of switching events on the rail's OCS.

Its single entry point, :meth:`OpusController.ensure`, answers: *given that a
communication group needs this circuit configuration on this rail, and the
request was issued at time t, when will the circuits be usable?* — creating a
switching event if needed.  The same method serves on-demand requests
(issued when the collective is ready to run) and provisioned requests (issued
speculatively as soon as the previous phase's traffic finished), which is how
provisioning hides the switching delay inside the inter-phase window (Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..errors import CircuitError, ControlPlaneError, FaultError
from ..parallelism.trace import ReconfigRecord
from ..topology.ocs import Circuit, CircuitConfiguration
from ..topology.photonic import PhotonicRailFabric
from .scheduler import FCFSScheduler, ReconfigurationRequest


@dataclass
class RailCircuitState:
    """Mutable circuit bookkeeping for one rail."""

    rail: int
    #: Installed circuits and the time each becomes usable.
    installed: Dict[Circuit, float] = field(default_factory=dict)
    #: Time until which each installed circuit is busy carrying traffic.
    busy_until: Dict[Circuit, float] = field(default_factory=dict)
    #: Time the rail's OCS finishes its latest switching event.
    switch_free_at: float = 0.0
    #: Number of switching events performed on this rail.
    reconfigurations: int = 0
    #: Installed circuit per OCS port (a valid crossbar state uses every
    #: port at most once); kept in sync by :meth:`install` / :meth:`tear` so
    #: conflict checks are port lookups, not scans over every installed
    #: circuit — the scan was quadratic per collective at fabric scale.
    port_owner: Dict[int, Circuit] = field(default_factory=dict)
    #: OCS ports taken out of service by fault injection.  A failed port is
    #: permanently conflicting: nothing can ever be installed on it, and the
    #: planner routes circuits through each domain's surviving ports instead.
    failed_ports: Set[int] = field(default_factory=set)

    def install(self, circuit: Circuit, usable_at: float) -> None:
        """Record ``circuit`` as installed and usable at ``usable_at``."""
        self.installed[circuit] = usable_at
        self.port_owner[circuit.port_a] = circuit
        self.port_owner[circuit.port_b] = circuit

    def tear(self, circuit: Circuit) -> None:
        """Forget an installed circuit (no-op if absent)."""
        if self.installed.pop(circuit, None) is not None:
            self.busy_until.pop(circuit, None)
            for port in (circuit.port_a, circuit.port_b):
                if self.port_owner.get(port) == circuit:
                    del self.port_owner[port]

    def clear(self) -> None:
        """Tear every circuit and forget traffic bookkeeping."""
        self.installed.clear()
        self.busy_until.clear()
        self.port_owner.clear()

    def conflicts_with(self, circuit: Circuit) -> List[Circuit]:
        """Installed circuits sharing a port with ``circuit`` (excluding itself)."""
        result = []
        for port in (circuit.port_a, circuit.port_b):
            owner = self.port_owner.get(port)
            if owner is not None and owner != circuit and owner not in result:
                result.append(owner)
        return result

    def drain_time(self, circuits: Iterable[Circuit]) -> float:
        """Latest time any of ``circuits`` is still carrying traffic.

        This is the earliest instant a reconfiguration tearing them down may
        start (Objective 3).  Circuits without recorded traffic drain at 0.
        """
        return max(
            (self.busy_until.get(circuit, 0.0) for circuit in circuits),
            default=0.0,
        )


class ReactiveReconfigurator:
    """Telemetry-driven reconfiguration state: hotspots and phases, learned live.

    The profile-driven provisioning path knows the phase sequence a priori
    (it ran a profiling iteration).  The reactive path learns the same two
    facts *online*, from the completion stream and the telemetry feed,
    without any profiling iteration:

    * **phase structure** — per rail, how many collective completions one
      parallelism axis's phase runs for, and which axis follows it
      (transition counts).  A phase length is learned the first time the
      axis hands over to a different one; from then on, a completion that
      reaches the learned run length predicts the most-frequent successor.
    * **evidence of pain** — the rail is only *armed* for speculative
      reconfiguration once blocking has actually been observed (an exposed
      switching delay on the critical path) or the hotspot detector flagged
      sustained link congestion.  An unarmed rail never speculates: a
      workload whose switching is already hidden gets no extra events.

    The shim consults this through its completion hook exactly where the
    profile-driven path consults the :class:`~repro.core.profiles.PhaseTracker`,
    so both modes share the budget clamp, the circuit guard, and the
    monotonic issue-time clamp.

    Speculation additionally **self-limits**, at iteration granularity and
    on the metric that matters: exposed blocking.  Iterations that ran
    without speculation establish a baseline (the best such iteration's
    total exposed switching time); an iteration whose speculations left
    *more* blocking than that baseline demonstrates the online model is
    mispredicting — tearing circuits the workload wanted costs switches
    instead of hiding them — so speculation is switched off.  It is
    retried after a geometrically growing number of quiet iterations (the
    model keeps learning from the completion stream while suppressed), so
    a model that comes good after its learning runway earns speculation
    back within a couple of iterations, while a workload it never predicts
    right degrades to the no-provisioning behaviour at a vanishing probe
    cost instead of thrashing below it.
    """

    #: Quiet iterations before a disabled speculation lane's first probe
    #: iteration; doubles after every probe that fails to beat the
    #: no-speculation baseline, resets once a probe succeeds.
    PROBE_BACKOFF_START = 1

    def __init__(self, min_phase_length: int = 1) -> None:
        self.min_phase_length = int(min_phase_length)
        #: Axis currently running per rail, and its completion count so far.
        self._current_axis: Dict[int, str] = {}
        self._run_length: Dict[int, int] = {}
        #: Learned phase length per (rail, axis): completions before handover.
        self._phase_lengths: Dict[Tuple[int, str], int] = {}
        #: Successor-transition counts per (rail, axis).
        self._transitions: Dict[Tuple[int, str], Dict[str, int]] = {}
        #: Distinct axes seen per rail — the reactive provisioning budget,
        #: mirroring the profiled path's phases-per-profile clamp.
        self._axes_seen: Dict[int, Set[str]] = {}
        #: Rails with observed blocking or hotspot evidence (latched).
        self._armed: Set[int] = set()
        #: Iteration-level speculation control (see :meth:`end_iteration`):
        #: whether the lane is on, this iteration's exposed blocking and
        #: whether it speculated, the best blocking of any non-speculating
        #: iteration, and the probe backoff while disabled.
        self._speculation_enabled = True
        self._iter_blocking = 0.0
        self._iter_speculated = False
        self._baseline_blocking: Optional[float] = None
        self._quiet_iterations = 0
        self._probe_wait = self.PROBE_BACKOFF_START
        #: Totals for reporting/tests.
        self.blocking_observed = 0.0
        self.hotspot_events = 0

    # -- evidence ------------------------------------------------------- #

    def note_blocking(self, rail: int, exposed: float) -> None:
        """An on-demand reconfiguration exposed ``exposed`` seconds on ``rail``."""
        if exposed > 0.0:
            self._armed.add(rail)
            self.blocking_observed += exposed
            self._iter_blocking += exposed

    def note_hotspots(self, links: Iterable[Tuple[str, str, int]]) -> None:
        """The hotspot detector flagged sustained congestion; arm every rail."""
        flagged = list(links)
        if flagged:
            self.hotspot_events += 1
            self._armed.update(self._axes_seen)

    def armed(self, rail: int) -> bool:
        """Whether ``rail`` has accumulated evidence that switching hurts."""
        return rail in self._armed

    # -- iteration-level speculation control ---------------------------- #

    def note_speculation(self, rail: int, axis: str) -> None:
        """A speculative reconfiguration for ``axis`` was issued on ``rail``."""
        self._iter_speculated = True

    def should_speculate(self, rail: int) -> bool:
        """Whether the speculation lane is currently on (see class docs)."""
        return self._speculation_enabled

    def end_iteration(self) -> None:
        """Close one iteration's books: judge speculation by its blocking.

        Non-speculating iterations tighten the baseline (the best exposed
        blocking the workload achieves on demand alone) and count toward
        the probe backoff.  Speculating iterations must not leave more
        blocking than that baseline: more blocking means the predictions
        tore circuits the workload wanted, so the lane shuts off and the
        next probe iteration moves geometrically further out.
        """
        if self._iter_speculated:
            baseline = self._baseline_blocking
            if baseline is None:
                # Speculation cannot be judged without an on-demand
                # reference: run the next iteration quiet to calibrate one.
                self._speculation_enabled = False
                self._quiet_iterations = 0
            elif self._iter_blocking > baseline:
                self._speculation_enabled = False
                self._quiet_iterations = 0
            else:
                # The probe (or steady speculation) held blocking at or
                # under the on-demand baseline: the model is predicting.
                self._probe_wait = self.PROBE_BACKOFF_START
        else:
            if (
                self._baseline_blocking is None
                or self._iter_blocking < self._baseline_blocking
            ):
                self._baseline_blocking = self._iter_blocking
            if not self._speculation_enabled:
                self._quiet_iterations += 1
                if self._quiet_iterations >= self._probe_wait:
                    self._speculation_enabled = True
                    self._quiet_iterations = 0
                    self._probe_wait *= 2
        self._iter_blocking = 0.0
        self._iter_speculated = False

    # -- phase learning ------------------------------------------------- #

    def observe_completion(
        self, rail: int, axis: str, end_time: float
    ) -> Optional[str]:
        """Record one collective completion; maybe predict the next axis.

        Returns the predicted successor axis when the current axis's phase
        has run for at least its learned length (i.e. the phase is complete
        as far as the online model knows), else ``None``.
        """
        current = self._current_axis.get(rail)
        if current != axis:
            if current is not None:
                run = self._run_length.get(rail, 0)
                if run >= self.min_phase_length:
                    self._phase_lengths[(rail, current)] = run
                successors = self._transitions.setdefault((rail, current), {})
                successors[axis] = successors.get(axis, 0) + 1
            self._current_axis[rail] = axis
            self._run_length[rail] = 1
        else:
            self._run_length[rail] = self._run_length.get(rail, 0) + 1
        self._axes_seen.setdefault(rail, set()).add(axis)
        learned = self._phase_lengths.get((rail, axis))
        if learned is None or self._run_length[rail] < learned:
            return None
        successors = self._transitions.get((rail, axis))
        if not successors:
            return None
        # Most-frequent successor; ties break on axis name for determinism.
        return min(successors, key=lambda name: (-successors[name], name))

    def budget(self, rail: int) -> int:
        """Speculative reconfigurations allowed per iteration on ``rail``."""
        return max(1, len(self._axes_seen.get(rail, ())))

    def reset(self) -> None:
        """Forget everything (a new job on the same controller)."""
        self._current_axis.clear()
        self._run_length.clear()
        self._phase_lengths.clear()
        self._transitions.clear()
        self._axes_seen.clear()
        self._armed.clear()
        self._speculation_enabled = True
        self._iter_blocking = 0.0
        self._iter_speculated = False
        self._baseline_blocking = None
        self._quiet_iterations = 0
        self._probe_wait = self.PROBE_BACKOFF_START
        self.blocking_observed = 0.0
        self.hotspot_events = 0


class OpusController:
    """Central controller for every rail's OCS of one job."""

    def __init__(
        self,
        fabric: PhotonicRailFabric,
        reconfiguration_delay: Optional[float] = None,
        scheduler: Optional[FCFSScheduler] = None,
    ) -> None:
        """Create a controller.

        Parameters
        ----------
        fabric:
            The photonic rail fabric whose OCSes this controller programs.
        reconfiguration_delay:
            Override of the OCS switching time in seconds; defaults to the
            fabric's OCS technology value.  The Fig. 8 benchmark sweeps this.
        scheduler:
            FC-FS request scheduler (a fresh one is created by default).
        """
        self.fabric = fabric
        self.scheduler = scheduler or FCFSScheduler()
        self._delay_override = reconfiguration_delay
        self._rails: Dict[int, RailCircuitState] = {
            rail: RailCircuitState(rail=rail) for rail in fabric.rails
        }
        #: Fast-path memo for :meth:`ensure`: (rail, configuration identity)
        #: -> (configuration, rail reconfiguration epoch, ready time).  The
        #: planner hands out cached configuration objects, and a coalesced
        #: axis configuration at fabric scale holds thousands of circuits —
        #: rescanning them per collective dominated the control plane.
        self._ensure_cache: Dict[Tuple[int, int], Tuple[CircuitConfiguration, int, float]] = {}
        #: Telemetry-driven reconfiguration state, attached by reactive-mode
        #: owners (see :class:`ReactiveReconfigurator`); ``None`` means the
        #: controller only serves on-demand and profile-provisioned requests.
        self.reactive: Optional[ReactiveReconfigurator] = None

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # Configuration-identity memo: re-key on the anchored configuration
        # objects, whose identity pickle/deepcopy preserve while their id()
        # changes (see FlowSimulator.__setstate__ for the full rationale).
        self._ensure_cache = {
            (rail, id(cached[0])): cached
            for (rail, _), cached in self._ensure_cache.items()
        }

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def reconfiguration_delay(self, rail: int) -> float:
        """Switching time of one reconfiguration on ``rail`` in seconds."""
        if self._delay_override is not None:
            return self._delay_override
        return self.fabric.rail(rail).technology.reconfiguration_time

    def rail_state(self, rail: int) -> RailCircuitState:
        """Return the mutable circuit state of one rail."""
        if rail not in self._rails:
            raise ControlPlaneError(f"rail {rail} is not managed by this controller")
        return self._rails[rail]

    def installed_configuration(self, rail: int) -> CircuitConfiguration:
        """The circuits currently installed on ``rail`` (controller's view)."""
        return CircuitConfiguration(tuple(self.rail_state(rail).installed))

    def total_reconfigurations(self) -> int:
        """Total switching events across all rails since construction."""
        return sum(state.reconfigurations for state in self._rails.values())

    # ------------------------------------------------------------------ #
    # Circuit requests
    # ------------------------------------------------------------------ #

    def ensure(
        self,
        rail: int,
        target: CircuitConfiguration,
        request: ReconfigurationRequest,
    ) -> Tuple[float, Optional[ReconfigRecord]]:
        """Make sure ``target``'s circuits exist on ``rail``.

        Returns ``(ready_time, reconfig_record)`` where ``ready_time`` is when
        every requested circuit is usable, and ``reconfig_record`` describes
        the switching event that had to be performed (``None`` if the circuits
        were already installed).
        """
        state = self.rail_state(rail)
        self.scheduler.submit(request)
        self.scheduler.next_request()

        cache_key = (rail, id(target))
        cached = self._ensure_cache.get(cache_key)
        if (
            cached is not None
            and cached[0] is target
            and cached[1] == state.reconfigurations
        ):
            # This exact configuration was fully installed when last checked
            # and no switching event has happened on the rail since.
            return max(request.issue_time, cached[2]), None

        missing = [c for c in target.circuits if c not in state.installed]
        if state.failed_ports:
            # The planner routes around failed ports, so a missing circuit
            # that still lands on one means no healthy assignment exists (or
            # a stale configuration object leaked past a port failure) —
            # fail loudly instead of pretending the install happened.
            for circuit in missing:
                for port in circuit.ports:
                    if port in state.failed_ports:
                        raise FaultError(
                            f"rail {rail}: circuit {circuit} needs OCS port "
                            f"{port}, which has failed; no healthy port "
                            "assignment can serve this configuration"
                        )
        if not missing:
            if not target.circuits:
                return request.issue_time, None
            ready = max(state.installed[c] for c in target.circuits)
            if len(self._ensure_cache) >= 4096:
                self._ensure_cache.clear()
            self._ensure_cache[cache_key] = (target, state.reconfigurations, ready)
            return max(request.issue_time, ready), None

        # Circuits that must be torn down because they share ports with the
        # circuits we need to add.
        to_tear = {
            conflicting
            for circuit in missing
            for conflicting in state.conflicts_with(circuit)
        }
        drain_time = state.drain_time(to_tear)
        start = max(request.issue_time, drain_time, state.switch_free_at)
        delay = self.reconfiguration_delay(rail)
        end = start + delay

        for circuit in to_tear:
            state.tear(circuit)
        for circuit in missing:
            state.install(circuit, end)
        state.switch_free_at = end
        state.reconfigurations += 1

        # Mirror the decision onto the fabric's OCS objects so that the
        # topology view (and any flow-level simulation on top of it) matches
        # the controller's bookkeeping.
        self._sync_fabric(rail)

        record = ReconfigRecord(
            rail=rail,
            start=start,
            end=end,
            provisioned=request.provisioned,
            blocking=0.0,
            group_name=request.axis,
            num_circuits_changed=len(missing) + len(to_tear),
        )
        ready = max(end, max(state.installed[c] for c in target.circuits))
        return ready, record

    def fail_port(self, rail: int, port: int) -> Optional[Circuit]:
        """Take one OCS port on ``rail`` out of service (fault injection).

        The port becomes permanently conflicting: the circuit it carried (if
        any) is torn down immediately — without a switching event, the light
        simply dies — the fabric's topology view is synchronized, and every
        future configuration touching the port is rejected by
        :meth:`ensure`.  Returns the torn circuit, or ``None`` if the port
        was idle.  Callers owning a planner must drop its cached
        configurations so new targets route around the failed port.
        """
        state = self.rail_state(rail)
        state.failed_ports.add(port)
        victim = state.port_owner.get(port)
        if victim is not None:
            # Tear through _sync_fabric so the topology links realizing the
            # circuit are removed and circuit-change listeners fire; only
            # then mark the hardware port failed (the OCS-level tear has
            # already happened by the time the mark lands).
            state.tear(victim)
            self._sync_fabric(rail)
        self.fabric.rail(rail).fail_port(port)
        # Cached ensure() answers may assert targets containing the victim
        # are fully installed; the tear invalidates them all.
        self._ensure_cache.clear()
        return victim

    def notify_traffic(
        self, rail: int, circuits: Iterable[Circuit], busy_until: float
    ) -> None:
        """Mark circuits as carrying traffic until ``busy_until``.

        A reconfiguration that would tear one of these circuits cannot start
        before the traffic drains (Objective 3).  The analytic network models
        feed the alpha–beta transfer end here; the flow-level photonic model
        (:class:`~repro.simulator.flow_network.PhotonicFlowNetworkModel`)
        feeds the *actual* drain time of the collective's flows, so drains
        under contention push subsequent reconfigurations later exactly as
        they would on hardware.
        """
        state = self.rail_state(rail)
        for circuit in circuits:
            if circuit not in state.installed:
                raise CircuitError(
                    f"rail {rail}: cannot mark traffic on circuit {circuit} "
                    "because it is not installed"
                )
            state.busy_until[circuit] = max(
                state.busy_until.get(circuit, 0.0), busy_until
            )

    def reset(self) -> None:
        """Tear down every circuit and forget all timing state (new job)."""
        for rail, state in self._rails.items():
            state.clear()
            state.switch_free_at = 0.0
            state.reconfigurations = 0
            self.fabric.clear_rail(rail)
        self._ensure_cache.clear()
        self.scheduler.reset()
        if self.reactive is not None:
            self.reactive.reset()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _sync_fabric(self, rail: int) -> None:
        state = self.rail_state(rail)
        configuration = CircuitConfiguration(tuple(state.installed))
        self.fabric.apply_configuration(rail, configuration)
