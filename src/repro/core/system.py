"""High-level facade: simulate a workload on any registered fabric backend.

:class:`PhotonicRailSystem` bundles the pieces a user otherwise wires by hand
(cluster, workload DAG, device mesh, fabric, Opus shim/controller, executor)
behind a small API.  Since the fabric-agnostic experiment layer landed
(:mod:`repro.experiments`), the facade is a thin wrapper over the backend
registry — :meth:`PhotonicRailSystem.run_backend` simulates the workload on
*any* registered fabric, while :meth:`PhotonicRailSystem.run` /
:meth:`PhotonicRailSystem.run_baseline` keep the original photonic/electrical
API the examples and the Fig. 8 benchmark build on:

* :meth:`PhotonicRailSystem.run` — simulate N iterations on the photonic rail;
* :meth:`PhotonicRailSystem.run_baseline` — the same workload on electrical
  (fully connected) rails;
* :func:`reconfiguration_latency_sweep` — the Fig. 8 experiment, now driven
  through the memoized parallel :class:`~repro.experiments.runner.ExperimentRunner`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..experiments.backends import create_network
from ..experiments.runner import ExperimentRunner, Scenario, ScenarioResult
from ..parallelism.config import WorkloadConfig
from ..parallelism.dag import DagBuildOptions, IterationDAG, build_iteration_dag
from ..parallelism.groups import GroupRegistry
from ..parallelism.mesh import DeviceMesh
from ..parallelism.trace import TrainingTrace
from ..simulator.executor import DAGExecutor, SimulationConfig
from ..simulator.network import NetworkModel
from ..topology.devices import ClusterSpec
from .network import PhotonicRailNetworkModel


@dataclass
class SystemConfig:
    """Knobs shared by every backend simulation."""

    simulation: SimulationConfig = field(default_factory=SimulationConfig)
    dag_options: DagBuildOptions = field(default_factory=DagBuildOptions)
    num_iterations: int = 2


class PhotonicRailSystem:
    """One workload on one cluster, simulated end to end on any backend."""

    def __init__(
        self,
        workload: WorkloadConfig,
        cluster: ClusterSpec,
        config: Optional[SystemConfig] = None,
    ) -> None:
        if workload.world_size > cluster.num_gpus:
            raise ConfigurationError(
                f"workload needs {workload.world_size} GPUs, cluster has "
                f"{cluster.num_gpus}"
            )
        self.workload = workload
        self.cluster = cluster
        self.config = config or SystemConfig()
        self.dag: IterationDAG = build_iteration_dag(
            workload, cluster, self.config.dag_options
        )
        self.mesh: DeviceMesh = self.dag.mesh
        self.registry = GroupRegistry(self.mesh)

    # ------------------------------------------------------------------ #
    # Simulations
    # ------------------------------------------------------------------ #

    def run_backend(
        self,
        backend: str,
        num_iterations: Optional[int] = None,
        **knobs: object,
    ) -> Tuple[TrainingTrace, NetworkModel]:
        """Simulate the workload on any registered fabric backend.

        ``knobs`` are backend-specific (see
        :func:`repro.experiments.backends.available_backends`); the freshly
        built network model is returned alongside the trace so callers can
        inspect controller state, installed circuits, etc.
        """
        network = create_network(
            backend, self.cluster, self.mesh, registry=self.registry, **knobs
        )
        executor = DAGExecutor(
            self.dag, self.cluster, network, config=self.config.simulation
        )
        trace = executor.run_training(num_iterations or self.config.num_iterations)
        return trace, network

    def run(
        self,
        reconfiguration_delay: Optional[float] = None,
        provisioning: bool = True,
        num_iterations: Optional[int] = None,
    ) -> Tuple[TrainingTrace, PhotonicRailNetworkModel]:
        """Simulate the workload on photonic rails under Opus.

        Parameters
        ----------
        reconfiguration_delay:
            OCS switching delay in seconds (None = the cluster's OCS
            technology default).
        provisioning:
            Enable speculative provisioning after the profiling iteration.
        num_iterations:
            Number of iterations to simulate (default from the system config).
        """
        trace, network = self.run_backend(
            "photonic",
            num_iterations=num_iterations,
            reconfiguration_delay=reconfiguration_delay,
            provisioning=provisioning,
        )
        if not isinstance(network, PhotonicRailNetworkModel):
            raise ConfigurationError(
                "the 'photonic' backend was replaced with one that does not "
                "produce a PhotonicRailNetworkModel; use run_backend() instead"
            )
        return trace, network

    def run_baseline(
        self,
        num_iterations: Optional[int] = None,
        use_tree_collectives: bool = False,
    ) -> TrainingTrace:
        """Simulate the workload on electrical (fully connected) rails."""
        trace, _network = self.run_backend(
            "electrical",
            num_iterations=num_iterations,
            use_tree_collectives=use_tree_collectives,
        )
        return trace


@dataclass(frozen=True)
class SweepPoint:
    """One point of the Fig. 8 sweep."""

    reconfiguration_delay: float
    provisioning: bool
    iteration_time: float
    normalized_iteration_time: float
    reconfigurations_per_iteration: float
    exposed_reconfig_time: float


def reconfiguration_latency_sweep(
    workload: WorkloadConfig,
    cluster: ClusterSpec,
    delays: Sequence[float],
    num_iterations: int = 3,
    config: Optional[SystemConfig] = None,
    runner: Optional[ExperimentRunner] = None,
    max_workers: Optional[int] = None,
) -> List[SweepPoint]:
    """Run the Fig. 8 experiment: iteration time vs reconfiguration latency.

    For every delay in ``delays`` the workload is simulated twice (with and
    without provisioning); iteration times are normalized to the electrical
    fully-connected baseline (the paper's "reconfiguration latency 0" case).
    The profiling iteration is excluded from the averages.

    The grid is fanned out over the :class:`ExperimentRunner`'s parallel
    workers, and repeated (delay, provisioning) points hit its memoization
    cache instead of being re-simulated.
    """
    delays = list(delays)
    system_config = config or SystemConfig(num_iterations=num_iterations)
    runner = runner or ExperimentRunner(max_workers=max_workers)

    base = Scenario(
        workload=workload,
        cluster=cluster,
        backend="photonic",
        num_iterations=num_iterations,
        simulation=system_config.simulation,
        dag_options=system_config.dag_options,
        name="fig8",
    )
    baseline = runner.run(
        Scenario(
            workload=workload,
            cluster=cluster,
            backend="electrical",
            num_iterations=num_iterations,
            simulation=system_config.simulation,
            dag_options=system_config.dag_options,
            name="fig8-baseline",
        )
    )
    baseline_time = baseline.metrics["steady_iteration_time"]
    if baseline_time <= 0:
        raise ConfigurationError("baseline iteration time must be positive")

    results = runner.sweep(
        base,
        {
            "reconfiguration_delay": delays,
            "provisioning": [False, True],
        },
    )
    points: List[SweepPoint] = []
    for (delay, provisioning), result in zip(
        ((d, p) for d in delays for p in (False, True)), results
    ):
        points.append(_sweep_point(delay, provisioning, result, baseline_time))
    return points


def _sweep_point(
    delay: float, provisioning: bool, result: ScenarioResult, baseline_time: float
) -> SweepPoint:
    return SweepPoint(
        reconfiguration_delay=delay,
        provisioning=provisioning,
        iteration_time=result.metrics["steady_iteration_time"],
        normalized_iteration_time=result.metrics["steady_iteration_time"]
        / baseline_time,
        reconfigurations_per_iteration=result.metrics[
            "reconfigurations_per_iteration"
        ],
        exposed_reconfig_time=result.metrics["exposed_reconfig_time"],
    )
