"""High-level facade: simulate a workload on photonic or electrical rails.

:class:`PhotonicRailSystem` bundles the pieces a user otherwise wires by hand
(cluster, workload DAG, device mesh, fabric, Opus shim/controller, executor)
behind a small API, and provides the comparison helpers the examples and the
Fig. 8 benchmark build on:

* :meth:`PhotonicRailSystem.run` — simulate N iterations on the photonic rail;
* :meth:`PhotonicRailSystem.run_baseline` — the same workload on electrical
  (fully connected) rails;
* :func:`reconfiguration_latency_sweep` — the Fig. 8 experiment: normalized
  iteration time versus OCS switching delay, with and without provisioning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..parallelism.config import WorkloadConfig
from ..parallelism.dag import DagBuildOptions, IterationDAG, build_iteration_dag
from ..parallelism.groups import GroupRegistry
from ..parallelism.mesh import DeviceMesh
from ..parallelism.trace import TrainingTrace
from ..simulator.executor import DAGExecutor, SimulationConfig
from ..simulator.network import ElectricalRailNetworkModel
from ..simulator.metrics import mean_iteration_time
from ..topology.devices import ClusterSpec
from ..topology.photonic import build_photonic_rail_fabric
from .network import PhotonicRailNetworkModel
from .shim import ShimOptions


@dataclass
class SystemConfig:
    """Knobs shared by the photonic and baseline simulations."""

    simulation: SimulationConfig = field(default_factory=SimulationConfig)
    dag_options: DagBuildOptions = field(default_factory=DagBuildOptions)
    num_iterations: int = 2


class PhotonicRailSystem:
    """One workload on one cluster, simulated end to end."""

    def __init__(
        self,
        workload: WorkloadConfig,
        cluster: ClusterSpec,
        config: Optional[SystemConfig] = None,
    ) -> None:
        if workload.world_size > cluster.num_gpus:
            raise ConfigurationError(
                f"workload needs {workload.world_size} GPUs, cluster has "
                f"{cluster.num_gpus}"
            )
        self.workload = workload
        self.cluster = cluster
        self.config = config or SystemConfig()
        self.dag: IterationDAG = build_iteration_dag(
            workload, cluster, self.config.dag_options
        )
        self.mesh: DeviceMesh = self.dag.mesh
        self.registry = GroupRegistry(self.mesh)

    # ------------------------------------------------------------------ #
    # Simulations
    # ------------------------------------------------------------------ #

    def run(
        self,
        reconfiguration_delay: Optional[float] = None,
        provisioning: bool = True,
        num_iterations: Optional[int] = None,
    ) -> Tuple[TrainingTrace, PhotonicRailNetworkModel]:
        """Simulate the workload on photonic rails under Opus.

        Parameters
        ----------
        reconfiguration_delay:
            OCS switching delay in seconds (None = the cluster's OCS
            technology default).
        provisioning:
            Enable speculative provisioning after the profiling iteration.
        num_iterations:
            Number of iterations to simulate (default from the system config).
        """
        fabric = build_photonic_rail_fabric(self.cluster)
        network = PhotonicRailNetworkModel(
            cluster=self.cluster,
            mesh=self.mesh,
            fabric=fabric,
            reconfiguration_delay=reconfiguration_delay,
            shim_options=ShimOptions(provisioning=provisioning),
            registry=self.registry,
        )
        executor = DAGExecutor(
            self.dag, self.cluster, network, config=self.config.simulation
        )
        trace = executor.run_training(num_iterations or self.config.num_iterations)
        return trace, network

    def run_baseline(
        self,
        num_iterations: Optional[int] = None,
        use_tree_collectives: bool = False,
    ) -> TrainingTrace:
        """Simulate the workload on electrical (fully connected) rails."""
        network = ElectricalRailNetworkModel(
            self.cluster, self.mesh, use_tree_collectives=use_tree_collectives
        )
        executor = DAGExecutor(
            self.dag, self.cluster, network, config=self.config.simulation
        )
        return executor.run_training(num_iterations or self.config.num_iterations)


@dataclass(frozen=True)
class SweepPoint:
    """One point of the Fig. 8 sweep."""

    reconfiguration_delay: float
    provisioning: bool
    iteration_time: float
    normalized_iteration_time: float
    reconfigurations_per_iteration: float
    exposed_reconfig_time: float


def reconfiguration_latency_sweep(
    workload: WorkloadConfig,
    cluster: ClusterSpec,
    delays: Sequence[float],
    num_iterations: int = 3,
    config: Optional[SystemConfig] = None,
) -> List[SweepPoint]:
    """Run the Fig. 8 experiment: iteration time vs reconfiguration latency.

    For every delay in ``delays`` the workload is simulated twice (with and
    without provisioning); iteration times are normalized to the electrical
    fully-connected baseline (the paper's "reconfiguration latency 0" case).
    The profiling iteration is excluded from the averages.
    """
    system_config = config or SystemConfig(num_iterations=num_iterations)
    system_config.num_iterations = num_iterations
    system = PhotonicRailSystem(workload, cluster, system_config)
    baseline = system.run_baseline()
    baseline_time = mean_iteration_time(baseline, skip_first=True)

    points: List[SweepPoint] = []
    for delay in delays:
        for provisioning in (False, True):
            trace, _network = system.run(
                reconfiguration_delay=delay, provisioning=provisioning
            )
            steady = [t for t in trace.iterations][1:] or list(trace.iterations)
            mean_time = sum(t.iteration_time for t in steady) / len(steady)
            reconfigs = sum(t.num_reconfigurations() for t in steady) / len(steady)
            exposed = sum(
                t.total_reconfiguration_blocking() for t in steady
            ) / len(steady)
            points.append(
                SweepPoint(
                    reconfiguration_delay=delay,
                    provisioning=provisioning,
                    iteration_time=mean_time,
                    normalized_iteration_time=mean_time / baseline_time,
                    reconfigurations_per_iteration=reconfigs,
                    exposed_reconfig_time=exposed,
                )
            )
    return points
