"""First-come-first-serve (FC-FS) request scheduling for the Opus controller.

The paper argues (§4) that a simple FC-FS policy is sufficient for the
control plane because rail bandwidth is not shared across jobs and the job's
framework already defines a sequential ordering of traffic demands.  What the
policy must guarantee is:

* requests are served in issue order *within a communication-group domain*
  (a communication kernel issued first by the application is served first);
* a reconfiguration never disrupts ongoing traffic (it waits for the circuits
  it would tear down to drain);
* no control divergence across rails for collectives spanning multiple rails
  (all rails of one request are handled as a unit).

This module provides the request bookkeeping: an ordered queue with
per-group-domain FIFO validation.  The actual time arithmetic lives in
:class:`~repro.core.controller.OpusController`, which consumes requests in the
order this scheduler releases them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..errors import SchedulingError

_REQUEST_COUNTER = itertools.count()


@dataclass(frozen=True)
class ReconfigurationRequest:
    """One reconfiguration request issued by the shim to the controller."""

    request_id: int
    group_key: FrozenSet[int]
    axis: str
    rails: Tuple[int, ...]
    issue_time: float
    provisioned: bool = False

    @staticmethod
    def create(
        group_key: FrozenSet[int],
        axis: str,
        rails: Tuple[int, ...],
        issue_time: float,
        provisioned: bool = False,
    ) -> "ReconfigurationRequest":
        """Build a request with a fresh monotonically increasing id."""
        return ReconfigurationRequest(
            request_id=next(_REQUEST_COUNTER),
            group_key=group_key,
            axis=axis,
            rails=rails,
            issue_time=issue_time,
            provisioned=provisioned,
        )


class FCFSScheduler:
    """Orders reconfiguration requests first-come-first-serve.

    The scheduler tracks, per communication-group domain (the member-set key),
    the issue time of the last admitted request and raises
    :class:`~repro.errors.SchedulingError` if a caller tries to admit requests
    of the same group out of order — the invariant the paper's Objective 3
    depends on.
    """

    def __init__(self) -> None:
        self._queue: List[ReconfigurationRequest] = []
        self._last_issue_per_group: Dict[FrozenSet[int], float] = {}
        self._served: List[ReconfigurationRequest] = []

    def submit(self, request: ReconfigurationRequest) -> None:
        """Admit one request, enforcing per-group FIFO order."""
        last = self._last_issue_per_group.get(request.group_key)
        if last is not None and request.issue_time < last:
            raise SchedulingError(
                f"request {request.request_id} for group {sorted(request.group_key)} "
                f"was issued at {request.issue_time:.6f}, before the previously "
                f"admitted request at {last:.6f} (FC-FS violation)"
            )
        self._last_issue_per_group[request.group_key] = request.issue_time
        self._queue.append(request)

    def next_request(self) -> Optional[ReconfigurationRequest]:
        """Pop the oldest pending request (by issue time, then id)."""
        if not self._queue:
            return None
        self._queue.sort(key=lambda r: (r.issue_time, r.request_id))
        request = self._queue.pop(0)
        self._served.append(request)
        return request

    def drain(self) -> List[ReconfigurationRequest]:
        """Pop every pending request in FC-FS order."""
        drained: List[ReconfigurationRequest] = []
        while True:
            request = self.next_request()
            if request is None:
                return drained
            drained.append(request)

    @property
    def pending(self) -> int:
        """Number of requests waiting to be served."""
        return len(self._queue)

    @property
    def served(self) -> Tuple[ReconfigurationRequest, ...]:
        """Requests served so far, in service order."""
        return tuple(self._served)

    def reset(self) -> None:
        """Clear all scheduler state (new job)."""
        self._queue.clear()
        self._last_issue_per_group.clear()
        self._served.clear()
