"""Circuit planning: from communication groups to per-rail circuit configurations.

The Opus controller keeps a *circuit lookup table* (paper Fig. 6): for every
communication group (and, coalesced, for every parallelism axis) it knows
which circuits each rail's OCS must provide.  The :class:`CircuitPlanner`
builds and caches these configurations:

* **ring collectives** (AllReduce, AllGather, ReduceScatter, AllToAll-over-
  ring) need a ring over the scale-up domains of the group's members — a
  single duplex circuit for two-member groups, a full ring (two NIC ports per
  GPU) for larger groups;
* **Send/Recv** (pipeline parallelism) needs point-to-point circuits between
  adjacent stages; the per-axis coalesced configuration is the whole pipeline
  chain;
* the **per-axis configuration** of a rail is the union of the configurations
  of all groups of that axis that touch the rail.  When that union is not
  installable within the NIC's port budget (constraint C2/C3) the planner
  reports it as non-coalescable and the controller falls back to per-group
  reconfiguration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from ..collectives.primitives import CollectiveOp, CollectiveType
from ..errors import CircuitConflictError, CircuitError, ControlPlaneError
from ..parallelism.groups import GroupRegistry
from ..parallelism.mesh import DeviceMesh
from ..topology.ocs import Circuit, CircuitConfiguration
from ..topology.photonic import PhotonicRailFabric, RailEndpoint


@dataclass(frozen=True)
class RailConfiguration:
    """The circuits one logical demand needs on every rail it touches."""

    per_rail: Mapping[int, CircuitConfiguration]

    def rails(self) -> Tuple[int, ...]:
        """Rails with at least one circuit."""
        return tuple(sorted(self.per_rail))

    def configuration(self, rail: int) -> CircuitConfiguration:
        """The circuits needed on ``rail`` (empty if the rail is untouched)."""
        return self.per_rail.get(rail, CircuitConfiguration(()))

    def num_circuits(self) -> int:
        """Total circuits across all rails."""
        return sum(len(cfg) for cfg in self.per_rail.values())


class CircuitPlanner:
    """Builds and caches circuit configurations for groups and axes."""

    def __init__(
        self,
        fabric: PhotonicRailFabric,
        mesh: DeviceMesh,
        registry: Optional[GroupRegistry] = None,
    ) -> None:
        self.fabric = fabric
        self.mesh = mesh
        self.registry = registry or GroupRegistry(mesh)
        self.ports_per_gpu = fabric.cluster.nic_port_config.num_ports
        self._group_cache: Dict[FrozenSet[int], RailConfiguration] = {}
        self._axis_cache: Dict[str, Optional[Dict[int, CircuitConfiguration]]] = {}

    # ------------------------------------------------------------------ #
    # Per-group configurations
    # ------------------------------------------------------------------ #

    def configuration_for_group(
        self, ranks: Sequence[int], chain: bool = False
    ) -> RailConfiguration:
        """Circuits needed by one communication group.

        Parameters
        ----------
        ranks:
            Member ranks in ring / pipeline order.
        chain:
            Build an open chain (pipeline) instead of a closed ring; the
            closing circuit is dropped, which saves one port pair on the two
            end domains.
        """
        key = frozenset(ranks)
        cache_key = key if not chain else frozenset(list(key) + [-1])
        if cache_key in self._group_cache:
            return self._group_cache[cache_key]

        per_rail: Dict[int, CircuitConfiguration] = {}
        if self.mesh.is_scaleout_group(ranks):
            rails = self.mesh.rails_of_group(ranks)
            for rail in rails:
                members = [r for r in ranks if self.mesh.rail_of(r) == rail]
                domains = [self.mesh.domain_of(r) for r in members]
                per_rail[rail] = self._rail_circuits(rail, domains, chain=chain)
        configuration = RailConfiguration(per_rail=per_rail)
        self._group_cache[cache_key] = configuration
        return configuration

    def configuration_for_op(self, op: CollectiveOp) -> RailConfiguration:
        """Circuits needed to serve one collective operation."""
        chain = op.collective == CollectiveType.SEND_RECV
        return self.configuration_for_group(op.group, chain=chain)

    def _rail_circuits(
        self, rail: int, domains: Sequence[int], chain: bool
    ) -> CircuitConfiguration:
        # Endpoint choice goes through the rail's healthy-port helpers:
        # failed OCS ports are permanently conflicting (fault injection), so
        # rings and pairs route through each domain's surviving NIC ports
        # and only raise when no healthy assignment exists.
        photonic_rail = self.fabric.rail(rail)
        unique = list(dict.fromkeys(domains))
        if len(unique) < 2:
            return CircuitConfiguration(())
        if len(unique) == 2:
            try:
                circuit = photonic_rail.circuit_between(
                    RailEndpoint(
                        unique[0], photonic_rail.healthy_port(unique[0], 0)
                    ),
                    RailEndpoint(
                        unique[1], photonic_rail.healthy_port(unique[1], 0)
                    ),
                )
            except CircuitError as exc:
                raise ControlPlaneError(
                    f"rail {rail}: cannot route a circuit between domains "
                    f"{unique[0]} and {unique[1]} around failed OCS ports: "
                    f"{exc}"
                ) from exc
            return CircuitConfiguration((circuit,))
        if self.ports_per_gpu < 2:
            raise ControlPlaneError(
                f"a group spanning {len(unique)} domains needs two NIC ports per "
                f"GPU for a ring/chain on rail {rail}, but the NIC is in "
                f"{self.ports_per_gpu}-port configuration (constraints C1/C3)"
            )
        try:
            ports = {
                domain: photonic_rail.healthy_port_pair(domain, (0, 1))
                for domain in unique
            }
        except CircuitError as exc:
            raise ControlPlaneError(
                f"rail {rail}: cannot route a ring over domains {unique} "
                f"around failed OCS ports: {exc}"
            ) from exc
        circuits: List[Circuit] = []
        last = len(unique) - 1
        for index, domain in enumerate(unique):
            if chain and index == last:
                break
            next_domain = unique[(index + 1) % len(unique)]
            circuits.append(
                photonic_rail.circuit_between(
                    RailEndpoint(domain, ports[domain][1]),
                    RailEndpoint(next_domain, ports[next_domain][0]),
                )
            )
        return CircuitConfiguration(circuits)

    # ------------------------------------------------------------------ #
    # Per-axis (coalesced) configurations
    # ------------------------------------------------------------------ #

    def axis_configuration(self, axis: str) -> Optional[Dict[int, CircuitConfiguration]]:
        """The coalesced per-rail configuration serving every group of ``axis``.

        Returns ``None`` when the union is not installable within the NIC port
        budget (the controller then falls back to per-group reconfiguration).
        """
        if axis in self._axis_cache:
            return self._axis_cache[axis]
        groups = [g for g in self.registry.groups(axis) if g.scaleout]
        per_rail: Dict[int, CircuitConfiguration] = {}
        result: Optional[Dict[int, CircuitConfiguration]] = per_rail
        try:
            for group in groups:
                chain = axis == "pp"
                group_config = self.configuration_for_group(group.ranks, chain=chain)
                for rail in group_config.rails():
                    existing = per_rail.get(rail, CircuitConfiguration(()))
                    per_rail[rail] = existing.union(group_config.configuration(rail))
        except (CircuitConflictError, ControlPlaneError):
            result = None
        self._axis_cache[axis] = result
        return result

    def coalescable(self, axis: str) -> bool:
        """Whether all groups of ``axis`` can share one installed configuration."""
        return self.axis_configuration(axis) is not None

    def target_for_op(self, op: CollectiveOp) -> RailConfiguration:
        """The configuration the controller should install to serve ``op``.

        Prefers the coalesced per-axis configuration (fewer reconfigurations,
        Objective 2); falls back to the op's own group configuration when the
        axis is not coalescable.
        """
        axis = op.parallelism
        if axis:
            axis_config = self.axis_configuration(axis)
            if axis_config is not None:
                rails = self.mesh.rails_of_group(op.group) if self.mesh.is_scaleout_group(op.group) else ()
                return RailConfiguration(
                    per_rail={
                        rail: axis_config[rail] for rail in rails if rail in axis_config
                    }
                )
        return self.configuration_for_op(op)

    def clear_cache(self) -> None:
        """Drop all cached configurations (used when the job layout changes)."""
        self._group_cache.clear()
        self._axis_cache.clear()
