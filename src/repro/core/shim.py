"""The Opus shim runtime: interception, profiling, and provisioning.

The shim is the per-job runtime of Fig. 6.  It sits between the application
(the workload DAG being executed) and the collective communication library
(the simulator's transfer model) and:

1. **intercepts** every collective call, turning it into a
   :class:`~repro.core.intents.CommIntent`;
2. during the first iteration, **profiles** the traffic pattern
   (:class:`~repro.core.profiles.TrafficProfiler`);
3. translates the demand into circuit configurations via the
   :class:`~repro.core.circuits.CircuitPlanner` and asks the
   :class:`~repro.core.controller.OpusController` to install them —
   on the critical path during profiling, or **speculatively (provisioning)**
   in later iterations, as soon as the previous parallelism phase's traffic
   finishes (Fig. 5b);
4. keeps the reconfiguration frequency low by requesting the coalesced
   per-axis configuration and only when the upcoming phase's parallelism
   differs from the one currently installed (Objective 2).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

from ..collectives.primitives import CollectiveOp
from ..errors import ControlPlaneError
from ..parallelism.groups import GroupRegistry
from ..parallelism.mesh import DeviceMesh
from ..parallelism.trace import ReconfigRecord
from ..topology.ocs import CircuitConfiguration
from ..topology.photonic import PhotonicRailFabric
from .circuits import CircuitPlanner, RailConfiguration
from .controller import OpusController
from .intents import intent_from_collective
from .profiles import PhaseTracker, TrafficProfiler
from .scheduler import ReconfigurationRequest


@dataclass
class ShimOptions:
    """Behavioural switches of the shim (the Fig. 8 ablation axes)."""

    #: Enable speculative provisioning after the profiling iteration.
    provisioning: bool = True
    #: Treat iteration 0 as the profiling iteration (reconfigure on demand,
    #: learn the phase sequence).  When False the shim never profiles and
    #: always reconfigures on demand.
    profile_first_iteration: bool = True
    #: Reconfigure at per-axis granularity (coalesced) when possible.  When
    #: False every communication group gets its own reconfiguration — the
    #: "reconfigure per collective group" ablation.
    coalesce_axis: bool = True
    #: Drive speculative reconfiguration from live telemetry instead of an
    #: a-priori profile: phase structure is learned online from the
    #: completion stream, and speculation only starts once blocking or
    #: hotspot evidence has accumulated (see
    #: :class:`~repro.core.controller.ReactiveReconfigurator`).  Usually
    #: paired with ``provisioning=False`` and ``profile_first_iteration=False``
    #: — the whole point is needing no profiling iteration.
    reactive: bool = False


@dataclass
class CircuitGrant:
    """The shim's answer to "when can this collective use the rails?"."""

    ready_time: float
    records: Tuple[ReconfigRecord, ...] = ()


class OpusShim:
    """Per-job Opus shim: the glue between interception and the controller."""

    def __init__(
        self,
        fabric: PhotonicRailFabric,
        mesh: DeviceMesh,
        controller: Optional[OpusController] = None,
        planner: Optional[CircuitPlanner] = None,
        registry: Optional[GroupRegistry] = None,
        options: Optional[ShimOptions] = None,
    ) -> None:
        self.fabric = fabric
        self.mesh = mesh
        self.registry = registry or GroupRegistry(mesh)
        self.controller = controller or OpusController(fabric)
        self.planner = planner or CircuitPlanner(fabric, mesh, self.registry)
        self.options = options or ShimOptions()
        self.profiler = TrafficProfiler(mesh)
        self.tracker = PhaseTracker(self.profiler)
        #: Optional veto on speculative installs: ``guard(rail, config)``
        #: returns False when installing ``config`` on ``rail`` would tear a
        #: circuit that is *currently* carrying traffic.  The analytic models
        #: never need it (the controller's busy times fully describe traffic),
        #: but the flow-level model has circuits whose drain time is unknown
        #: while their flows are still on the wire, so it skips provisioning
        #: against them rather than tearing live circuits.
        self.circuit_guard: Optional[Callable[[int, CircuitConfiguration], bool]] = None
        self._iteration = 0
        self._provisioned_records: List[ReconfigRecord] = []
        #: Number of provisioning requests issued (for reporting/tests).
        self.provision_requests = 0
        #: Provisioning budget bookkeeping: speculative reconfigurations issued
        #: per rail in the current iteration.  Capped at the number of phases
        #: the profile learned, so a transient misprediction (caused by large
        #: switching delays re-ordering concurrent groups) cannot degenerate
        #: into a reconfiguration thrash loop.
        self._provisions_this_iteration: Dict[int, int] = {}
        #: Latest provisioned issue time per rail.  Completion notifications
        #: arrive in simulator event order, whose *logical* end times (event
        #: time + path latency) need not be monotone across collectives, while
        #: the FC-FS scheduler requires per-group issue order — so speculative
        #: requests are clamped to never move backwards on a rail.
        self._last_provision_issue: Dict[int, float] = {}

    # ------------------------------------------------------------------ #
    # Iteration lifecycle
    # ------------------------------------------------------------------ #

    @property
    def iteration(self) -> int:
        """Index of the iteration currently executing."""
        return self._iteration

    @property
    def profiling(self) -> bool:
        """Whether the shim is still in its profiling iteration."""
        return self.options.profile_first_iteration and not self.profiler.frozen

    def start_iteration(self, iteration: int, time: float) -> None:
        """Notify the shim that a new iteration starts."""
        self._iteration = iteration
        self._provisions_this_iteration.clear()
        if self.profiler.frozen:
            self.tracker.reset()

    def end_iteration(self, iteration: int, time: float) -> None:
        """Notify the shim that an iteration finished."""
        if self.options.profile_first_iteration and not self.profiler.frozen:
            self.profiler.finalize()
            self.tracker.reset()
        if self.options.reactive and self.controller.reactive is not None:
            # Close the reactive loop's per-iteration books: speculation is
            # judged by the blocking it left versus the on-demand baseline.
            self.controller.reactive.end_iteration()

    # ------------------------------------------------------------------ #
    # Collective interception
    # ------------------------------------------------------------------ #

    def target_for(self, op: CollectiveOp) -> RailConfiguration:
        """The circuit configuration the controller would install to serve ``op``.

        Exposed so the flow-level model can inspect (and guard against live
        conflicts with) the target before committing to a request.
        """
        if self.options.coalesce_axis:
            return self.planner.target_for_op(op)
        return self.planner.configuration_for_op(op)

    def request_circuits(self, op: CollectiveOp, ready_time: float) -> CircuitGrant:
        """Serve one intercepted scale-out collective call.

        Returns when the circuits it needs are usable, together with every
        reconfiguration record produced on its behalf (including buffered
        records from provisioning decisions taken earlier).
        """
        intent = intent_from_collective(op, self.mesh, issued_at=ready_time)
        if self.profiling:
            self.profiler.record_intent(intent)

        target = self.target_for(op)
        records: List[ReconfigRecord] = []
        ready = ready_time
        for rail in target.rails():
            configuration = target.configuration(rail)
            request = ReconfigurationRequest.create(
                group_key=intent.group_key,
                axis=op.parallelism,
                rails=(rail,),
                issue_time=ready_time,
                provisioned=False,
            )
            rail_ready, record = self.controller.ensure(rail, configuration, request)
            ready = max(ready, rail_ready)
            if record is not None:
                exposed = max(0.0, record.end - ready_time)
                records.append(replace(record, blocking=exposed))
                if self.options.reactive and self.controller.reactive is not None:
                    # Blocking on the critical path is the reactive loop's
                    # primary arming signal: switching demonstrably hurts
                    # this rail, so hiding it is worth speculating for.
                    self.controller.reactive.note_blocking(rail, exposed)

        buffered = self._provisioned_records
        self._provisioned_records = []
        return CircuitGrant(ready_time=ready, records=tuple(buffered + records))

    def notify_transfer(self, op: CollectiveOp, start: float, end: float) -> None:
        """Record the executed window of a collective and mark circuits busy."""
        intent = intent_from_collective(op, self.mesh, issued_at=start)
        if self.profiling:
            self.profiler.record_completion(intent, start, end)
        target = self.target_for(op)
        for rail in target.rails():
            circuits = target.configuration(rail).circuits
            installed = self.controller.installed_configuration(rail).circuits
            self.controller.notify_traffic(rail, circuits & installed, end)

    def notify_completion(self, op: CollectiveOp, end_time: float) -> None:
        """Provisioning hook: called when a scale-out collective finishes.

        If the learned profile predicts that the next phase on the rails this
        collective used belongs to a *different* parallelism axis, the shim
        immediately issues a speculative (provisioned) reconfiguration so the
        switching delay overlaps with the upcoming idle window.

        In reactive mode the same decision point runs against the
        telemetry-driven online model instead of the profile: the learned
        phase structure comes from the completion stream itself, and the
        rail must additionally be *armed* by blocking or hotspot evidence.
        """
        axis = op.parallelism
        if not axis or not self.mesh.is_scaleout_group(op.group):
            return
        if self.options.reactive and self.controller.reactive is not None:
            reactive = self.controller.reactive
            for rail in self.mesh.rails_of_group(op.group):
                predicted = reactive.observe_completion(rail, axis, end_time)
                if predicted is None or predicted == axis:
                    continue
                if not reactive.armed(rail):
                    # No blocking or hotspot evidence yet: switching is not
                    # demonstrably hurting this rail, so do not speculate.
                    continue
                if not reactive.should_speculate(rail):
                    # The iteration-level control says speculation has been
                    # leaving more blocking than on-demand switching alone:
                    # stay quiet rather than thrash below the
                    # no-provisioning baseline.
                    continue
                if (
                    self._provisions_this_iteration.get(rail, 0)
                    >= reactive.budget(rail)
                ):
                    continue
                if self._speculate(rail, predicted, end_time):
                    reactive.note_speculation(rail, predicted)
            return
        if not self.options.provisioning or not self.profiler.frozen:
            return
        rails = self.mesh.rails_of_group(op.group)
        for rail in rails:
            try:
                self.tracker.observe(rail, axis)
            except ControlPlaneError:
                continue
            if not self.tracker.current_phase_complete(rail):
                # The phase still has collectives that need its circuits;
                # reconfiguring now would disrupt them (Objective 3).
                continue
            predicted = self.tracker.predicted_next_axis(rail)
            if predicted is None or predicted == axis:
                continue
            budget = len(self.profiler.profile(rail).phases)
            if self._provisions_this_iteration.get(rail, 0) >= budget:
                # Mispredictions (possible when very large switching delays
                # re-order concurrent groups relative to the profiling
                # iteration) must not turn into a reconfiguration thrash loop:
                # never issue more speculative reconfigurations per iteration
                # than the profile has phases.
                continue
            self._speculate(rail, predicted, end_time)

    def _speculate(self, rail: int, predicted: str, end_time: float) -> bool:
        """Issue one speculative (provisioned) reconfiguration on ``rail``.

        Shared by the profile-driven and reactive paths: planner lookup,
        live-circuit guard, the monotonic issue-time clamp, and record
        buffering are identical — only the predictor differs.  Returns
        whether a request was actually issued (guarded-off speculations
        must not enter the reactive scorecard).
        """
        axis_config = self.planner.axis_configuration(predicted)
        if axis_config is None or rail not in axis_config:
            return False
        if self.circuit_guard is not None and not self.circuit_guard(
            rail, axis_config[rail]
        ):
            # Installing the predicted axis would tear a circuit whose
            # flows are still on the wire (drain time unknown at flow
            # level).  Skip the speculation; the collective that actually
            # needs the circuits will request them on demand.
            return False
        issue_time = max(end_time, self._last_provision_issue.get(rail, 0.0))
        self._last_provision_issue[rail] = issue_time
        request = ReconfigurationRequest.create(
            group_key=frozenset({-(rail + 1)}),
            axis=predicted,
            rails=(rail,),
            issue_time=issue_time,
            provisioned=True,
        )
        _, record = self.controller.ensure(rail, axis_config[rail], request)
        self.provision_requests += 1
        self._provisions_this_iteration[rail] = (
            self._provisions_this_iteration.get(rail, 0) + 1
        )
        if record is not None:
            self._provisioned_records.append(record)
        return True
