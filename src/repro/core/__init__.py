"""Opus: the paper's control plane for photonic rail-optimized fabrics.

Components (mirroring Fig. 6 of the paper):

* :mod:`repro.core.intents` — intercepted collective calls as communication
  intents and demand matrices.
* :mod:`repro.core.profiles` — the traffic profiler (learn once, predict every
  iteration) and the per-rail phase tracker.
* :mod:`repro.core.circuits` — the circuit planner / lookup table mapping
  communication groups and parallelism axes to per-rail circuit
  configurations.
* :mod:`repro.core.scheduler` — FC-FS request scheduling.
* :mod:`repro.core.controller` — per-rail circuit state, conflict-free
  switching events, reconfiguration timing.
* :mod:`repro.core.shim` — the shim runtime tying interception, profiling,
  provisioning, and the controller together.
* :mod:`repro.core.network` — the simulator-facing network model for photonic
  rails under Opus.
* :mod:`repro.core.system` — a high-level facade plus the Fig. 8 sweep.
"""

from .circuits import CircuitPlanner, RailConfiguration
from .controller import OpusController, RailCircuitState
from .intents import CommIntent, DemandMatrix, demand_matrix_from_intents, intent_from_collective
from .network import PhotonicRailNetworkModel
from .profiles import PhaseRecord, PhaseTracker, RailProfile, TrafficProfiler
from .scheduler import FCFSScheduler, ReconfigurationRequest
from .shim import CircuitGrant, OpusShim, ShimOptions
from .system import (
    PhotonicRailSystem,
    SweepPoint,
    SystemConfig,
    reconfiguration_latency_sweep,
)

__all__ = [
    "CircuitGrant",
    "CircuitPlanner",
    "CommIntent",
    "DemandMatrix",
    "FCFSScheduler",
    "OpusController",
    "OpusShim",
    "PhaseRecord",
    "PhaseTracker",
    "PhotonicRailNetworkModel",
    "PhotonicRailSystem",
    "RailCircuitState",
    "RailConfiguration",
    "RailProfile",
    "ReconfigurationRequest",
    "ShimOptions",
    "SweepPoint",
    "SystemConfig",
    "TrafficProfiler",
    "demand_matrix_from_intents",
    "intent_from_collective",
    "reconfiguration_latency_sweep",
]
