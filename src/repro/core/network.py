"""Photonic-rail network model: the bridge between the simulator and Opus.

This is the :class:`~repro.simulator.network.NetworkModel` implementation the
DAG executor uses when the scale-out fabric is a photonic rail.  For every
scale-out collective it consults the :class:`~repro.core.shim.OpusShim`:

* the transfer may only start once the circuits its communication group needs
  are installed — an on-demand reconfiguration (profiling iteration, or
  provisioning disabled) exposes the OCS switching delay on the critical path,
  a provisioned reconfiguration usually completes inside the inter-phase
  window and exposes little or nothing (Fig. 5);
* the transfer itself is priced with the same ring alpha–beta model as the
  electrical baseline (the paper's simulation assumes equal per-port bandwidth
  for electrical and optical rails);
* intra-domain collectives use the scale-up interconnect and never touch Opus.

Every reconfiguration performed on behalf of (or speculatively ahead of) a
collective is returned to the executor and lands in the iteration trace, so
the Fig. 8 analysis can separate switching time that was hidden from switching
time that extended the iteration.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ConfigurationError
from ..parallelism.dag import Operation
from ..parallelism.groups import GroupRegistry
from ..parallelism.mesh import DeviceMesh
from ..simulator.network import CommTiming, NetworkModel
from ..topology.devices import ClusterSpec
from ..topology.photonic import PhotonicRailFabric, build_photonic_rail_fabric
from .controller import OpusController
from .shim import OpusShim, ShimOptions


class PhotonicRailNetworkModel(NetworkModel):
    """Scale-out timing model for optical rails under Opus control."""

    def __init__(
        self,
        cluster: ClusterSpec,
        mesh: DeviceMesh,
        fabric: Optional[PhotonicRailFabric] = None,
        reconfiguration_delay: Optional[float] = None,
        shim_options: Optional[ShimOptions] = None,
        registry: Optional[GroupRegistry] = None,
    ) -> None:
        super().__init__(cluster, mesh)
        self.fabric = fabric or build_photonic_rail_fabric(cluster)
        if self.fabric.cluster is not cluster:
            raise ConfigurationError(
                "the photonic fabric must be built from the same cluster "
                "specification as the network model"
            )
        self.controller = OpusController(
            self.fabric, reconfiguration_delay=reconfiguration_delay
        )
        self.shim = OpusShim(
            fabric=self.fabric,
            mesh=mesh,
            controller=self.controller,
            registry=registry,
            options=shim_options,
        )

    # ------------------------------------------------------------------ #
    # Fault injection
    # ------------------------------------------------------------------ #

    def install_fault_plan(self, plan) -> None:
        """Bind a fault plan (inline); supports OCS port failures.

        A failed port is permanently conflicting: the controller tears the
        circuit it carried and the planner's dropped caches make every
        future configuration route through each domain's surviving ports.
        """
        from ..simulator.faults import FaultInjector

        injector = FaultInjector(plan)
        injector.on_port_failed = self._apply_port_failure
        self.fault_injector = injector

    def _apply_port_failure(self, event, now: float) -> None:
        self.controller.fail_port(event.rail, event.port)
        self.shim.planner.clear_cache()

    # ------------------------------------------------------------------ #
    # NetworkModel interface
    # ------------------------------------------------------------------ #

    def timing(self, operation: Operation, ready_time: float) -> CommTiming:
        assert operation.collective is not None
        if self.fault_injector is not None and self.fault_injector.inline:
            self.fault_injector.advance_to(ready_time)
        duration = self.transfer_duration(operation)
        if not self.is_scaleout(operation):
            return CommTiming(start=ready_time, end=ready_time + duration)

        grant = self.shim.request_circuits(operation.collective, ready_time)
        start = max(ready_time, grant.ready_time)
        end = start + duration
        self.shim.notify_transfer(operation.collective, start, end)
        return CommTiming(start=start, end=end, reconfigs=grant.records)

    def on_comm_end(self, operation: Operation, end_time: float) -> None:
        assert operation.collective is not None
        if self.is_scaleout(operation):
            self.shim.notify_completion(operation.collective, end_time)

    def on_iteration_start(self, iteration: int, time: float) -> None:
        self.shim.start_iteration(iteration, time)

    def on_iteration_end(self, iteration: int, time: float) -> None:
        self.shim.end_iteration(iteration, time)

    # ------------------------------------------------------------------ #
    # Reporting helpers
    # ------------------------------------------------------------------ #

    @property
    def total_reconfigurations(self) -> int:
        """Total switching events performed across all rails so far."""
        return self.controller.total_reconfigurations()

    @property
    def reconfiguration_delay(self) -> float:
        """The (possibly overridden) per-event switching delay in seconds."""
        return self.controller.reconfiguration_delay(next(iter(self.fabric.rails)))
