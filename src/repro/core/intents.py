"""Communication intents: what the Opus shim learns from intercepted collectives.

The Opus shim sits between the application and the collective communication
library (paper Fig. 6).  Every collective call the application issues is
"intercepted" and turned into a :class:`CommIntent` — a provisional intent to
communicate that carries the communication group, the payload, and the
parallelism axis it belongs to.  Intents feed two consumers:

* the :class:`~repro.core.profiles.TrafficProfiler`, which learns the
  per-iteration traffic pattern during the first (profiling) iteration;
* the :class:`~repro.core.controller.OpusController`, which translates the
  demand into circuit configurations.

A :class:`DemandMatrix` aggregates intents into per-(source domain,
destination domain) byte counts per rail, the representation the controller's
reconfiguration decisions are keyed on ("reconfigure only if the demand matrix
of the parallelism changes", §4.1).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Tuple

from ..collectives.primitives import CollectiveOp, CollectiveType, total_traffic_bytes
from ..errors import ControlPlaneError
from ..parallelism.mesh import DeviceMesh

_INTENT_COUNTER = itertools.count()


@dataclass(frozen=True)
class CommIntent:
    """A provisional intent to communicate, derived from one collective call.

    Attributes
    ----------
    intent_id:
        Unique id assigned at interception time.
    collective:
        Collective type of the underlying call.
    group:
        Participating global ranks (ring / issue order).
    size_bytes:
        Per-rank input payload of the collective.
    parallelism:
        Parallelism axis (``"dp"``, ``"pp"``, ...), the key quantity Opus uses
        to detect parallelism shifts.
    rails:
        Rails the group's scale-out traffic will use (empty for intra-domain
        groups).
    issued_at:
        Time the application issued the call (simulation seconds).
    """

    intent_id: int
    collective: CollectiveType
    group: Tuple[int, ...]
    size_bytes: float
    parallelism: str
    rails: Tuple[int, ...]
    issued_at: float

    @property
    def group_key(self) -> FrozenSet[int]:
        """Order-insensitive group identity."""
        return frozenset(self.group)

    @property
    def is_scaleout(self) -> bool:
        """Whether the intent generates rail traffic."""
        return bool(self.rails)


def intent_from_collective(
    op: CollectiveOp, mesh: DeviceMesh, issued_at: float
) -> CommIntent:
    """Build a :class:`CommIntent` from an intercepted collective call."""
    scaleout = mesh.cluster is not None and mesh.is_scaleout_group(op.group)
    rails = mesh.rails_of_group(op.group) if scaleout else ()
    return CommIntent(
        intent_id=next(_INTENT_COUNTER),
        collective=op.collective,
        group=op.group,
        size_bytes=op.size_bytes,
        parallelism=op.parallelism,
        rails=rails,
        issued_at=issued_at,
    )


@dataclass
class DemandMatrix:
    """Per-rail domain-to-domain traffic demand aggregated from intents."""

    #: demand[rail][(src_domain, dst_domain)] = bytes (unordered pair, low first)
    demand: Dict[int, Dict[Tuple[int, int], float]] = field(default_factory=dict)

    def add_intent(self, intent: CommIntent, mesh: DeviceMesh) -> None:
        """Accumulate one intent into the matrix.

        Ring collectives contribute demand between consecutive group members'
        domains; Send/Recv contributes demand between its two endpoints.
        """
        if not intent.is_scaleout:
            return
        domains = [mesh.domain_of(rank) for rank in intent.group]
        total = total_traffic_bytes(
            CollectiveOp(
                collective=intent.collective,
                group=intent.group,
                size_bytes=intent.size_bytes,
                parallelism=intent.parallelism,
            )
        )
        pairs: List[Tuple[int, int]] = []
        if len(domains) == 2:
            pairs = [self._ordered(domains[0], domains[1])]
        else:
            pairs = [
                self._ordered(domains[i], domains[(i + 1) % len(domains)])
                for i in range(len(domains))
            ]
        if not pairs:
            return
        share = total / len(pairs)
        for rail in intent.rails:
            rail_demand = self.demand.setdefault(rail, {})
            for pair in pairs:
                rail_demand[pair] = rail_demand.get(pair, 0.0) + share

    def pairs_for_rail(self, rail: int) -> Dict[Tuple[int, int], float]:
        """Return the (src_domain, dst_domain) → bytes map for one rail."""
        return dict(self.demand.get(rail, {}))

    def total_bytes(self) -> float:
        """Total demand across all rails."""
        return sum(sum(rail.values()) for rail in self.demand.values())

    def rails(self) -> Tuple[int, ...]:
        """Rails with any demand."""
        return tuple(sorted(self.demand))

    @staticmethod
    def _ordered(a: int, b: int) -> Tuple[int, int]:
        if a == b:
            raise ControlPlaneError("demand pairs must connect distinct domains")
        return (a, b) if a < b else (b, a)


def demand_matrix_from_intents(
    intents: Iterable[CommIntent], mesh: DeviceMesh
) -> DemandMatrix:
    """Aggregate a sequence of intents into a :class:`DemandMatrix`."""
    matrix = DemandMatrix()
    for intent in intents:
        matrix.add_intent(intent, mesh)
    return matrix
