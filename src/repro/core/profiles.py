"""Traffic profiling: learning the per-iteration communication pattern.

During the first training iteration the Opus shim only observes: it records
every intercepted collective as a :class:`~repro.core.intents.CommIntent` and
assembles, per rail, the ordered sequence of *parallelism phases* — maximal
runs of consecutive scale-out collectives belonging to the same parallelism
axis.  Because ML training repeats the same execution graph every iteration,
this profile predicts the traffic of all later iterations, which is what makes
speculative provisioning safe (paper §4.1).

The profiler also exposes per-phase demand matrices so the controller only
reconfigures "if the demand matrix of the parallelism changes".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ProfileError
from ..parallelism.mesh import DeviceMesh
from .intents import CommIntent, DemandMatrix


@dataclass
class PhaseRecord:
    """One parallelism phase on one rail: a run of same-axis collectives."""

    axis: str
    rail: int
    first_start: float
    last_end: float
    num_collectives: int = 0
    total_bytes: float = 0.0

    @property
    def duration(self) -> float:
        """Span of the phase in seconds."""
        return self.last_end - self.first_start


@dataclass
class RailProfile:
    """The learned phase sequence of one rail over one iteration."""

    rail: int
    phases: List[PhaseRecord] = field(default_factory=list)

    @property
    def axis_sequence(self) -> Tuple[str, ...]:
        """The axis of each phase, in order."""
        return tuple(phase.axis for phase in self.phases)

    def next_axis_after(self, phase_index: int) -> Optional[str]:
        """Axis of the phase after ``phase_index`` (None at the end)."""
        if phase_index + 1 < len(self.phases):
            return self.phases[phase_index + 1].axis
        return None


class TrafficProfiler:
    """Learns the per-rail phase sequence from the profiling iteration."""

    def __init__(self, mesh: DeviceMesh) -> None:
        self.mesh = mesh
        self._intents: List[CommIntent] = []
        self._completions: List[Tuple[CommIntent, float, float]] = []
        self._profiles: Dict[int, RailProfile] = {}
        self._frozen = False

    # ------------------------------------------------------------------ #
    # Recording (profiling iteration)
    # ------------------------------------------------------------------ #

    @property
    def frozen(self) -> bool:
        """Whether the profile has been finalized."""
        return self._frozen

    def record_intent(self, intent: CommIntent) -> None:
        """Record one intercepted collective call."""
        if self._frozen:
            return
        self._intents.append(intent)

    def record_completion(self, intent: CommIntent, start: float, end: float) -> None:
        """Record the observed execution window of one collective."""
        if self._frozen:
            return
        self._completions.append((intent, start, end))

    def finalize(self) -> None:
        """Freeze the profile and build the per-rail phase sequences."""
        if self._frozen:
            return
        self._build_profiles()
        self._frozen = True

    def _build_profiles(self) -> None:
        per_rail: Dict[int, List[Tuple[CommIntent, float, float]]] = {}
        for intent, start, end in self._completions:
            if not intent.is_scaleout:
                continue
            for rail in intent.rails:
                per_rail.setdefault(rail, []).append((intent, start, end))
        for rail, records in per_rail.items():
            records.sort(key=lambda item: (item[1], item[0].intent_id))
            profile = RailProfile(rail=rail)
            for intent, start, end in records:
                phases = profile.phases
                if phases and phases[-1].axis == intent.parallelism:
                    current = phases[-1]
                    current.last_end = max(current.last_end, end)
                    current.num_collectives += 1
                    current.total_bytes += intent.size_bytes
                else:
                    phases.append(
                        PhaseRecord(
                            axis=intent.parallelism,
                            rail=rail,
                            first_start=start,
                            last_end=end,
                            num_collectives=1,
                            total_bytes=intent.size_bytes,
                        )
                    )
            self._profiles[rail] = profile

    # ------------------------------------------------------------------ #
    # Queries (later iterations)
    # ------------------------------------------------------------------ #

    def rails(self) -> Tuple[int, ...]:
        """Rails for which a profile was learned."""
        self._require_frozen()
        return tuple(sorted(self._profiles))

    def profile(self, rail: int) -> RailProfile:
        """Return the learned profile of one rail."""
        self._require_frozen()
        if rail not in self._profiles:
            raise ProfileError(f"no traffic profile learned for rail {rail}")
        return self._profiles[rail]

    def phase_sequence(self, rail: int) -> Tuple[str, ...]:
        """Return the phase (axis) sequence of one rail."""
        return self.profile(rail).axis_sequence

    def num_phase_transitions(self, rail: int) -> int:
        """Number of parallelism shifts on one rail per iteration."""
        sequence = self.phase_sequence(rail)
        return max(0, len(sequence) - 1)

    def demand_matrix(self) -> DemandMatrix:
        """Aggregate demand matrix over the whole profiling iteration."""
        matrix = DemandMatrix()
        for intent in self._intents:
            matrix.add_intent(intent, self.mesh)
        return matrix

    def _require_frozen(self) -> None:
        if not self._frozen:
            raise ProfileError(
                "the traffic profile is still being learned; call finalize() "
                "at the end of the profiling iteration first"
            )


class PhaseTracker:
    """Tracks where in the learned phase sequence a rail currently is.

    The shim uses one tracker per iteration (after profiling) to answer two
    questions provisioning needs: *which parallelism phase comes next on this
    rail?* and *has the current phase finished all of its collectives?* — the
    latter is what makes it safe to speculatively reconfigure, because the
    upcoming phase's circuits may conflict with (and tear down) the current
    phase's.  The tracker is resilient to small ordering differences: if the
    observed axis does not match the expected phase it resynchronizes by
    scanning forward.
    """

    def __init__(self, profiler: TrafficProfiler) -> None:
        self.profiler = profiler
        self._positions: Dict[int, int] = {}
        self._collectives_seen: Dict[int, int] = {}

    def reset(self) -> None:
        """Reset all rails to the start of their phase sequence (new iteration)."""
        self._positions.clear()
        self._collectives_seen.clear()

    def observe(self, rail: int, axis: str) -> None:
        """Record that a collective of ``axis`` completed on ``rail``."""
        phases = self.profiler.profile(rail).phases
        if not phases:
            return
        position = min(self._positions.get(rail, 0), len(phases) - 1)
        seen = self._collectives_seen.get(rail, 0)
        if phases[position].axis == axis:
            seen += 1
        else:
            # Transition (or resync): scan forward for the next phase of this axis.
            advanced = None
            for candidate in range(position + 1, len(phases)):
                if phases[candidate].axis == axis:
                    advanced = candidate
                    break
            if advanced is not None:
                position = advanced
                seen = 1
            # Unknown axis (never profiled on this rail): leave the pointer.
        self._positions[rail] = position
        self._collectives_seen[rail] = seen

    def current_axis(self, rail: int) -> Optional[str]:
        """Axis of the phase the rail is currently in."""
        phases = self.profiler.profile(rail).phases
        if not phases:
            return None
        position = min(self._positions.get(rail, 0), len(phases) - 1)
        return phases[position].axis

    def predicted_next_axis(self, rail: int) -> Optional[str]:
        """Axis of the next phase on ``rail``.

        At the end of the learned sequence the prediction wraps around to the
        first phase of the next iteration — training is cyclic, so the last
        phase of iteration *k* is followed by the first phase of iteration
        *k+1* and its circuits can be provisioned across the boundary.
        """
        phases = self.profiler.profile(rail).phases
        position = self._positions.get(rail, 0)
        if position + 1 < len(phases):
            return phases[position + 1].axis
        if phases:
            return phases[0].axis
        return None

    def current_phase_complete(self, rail: int) -> bool:
        """Whether every collective of the current phase has been observed."""
        phases = self.profiler.profile(rail).phases
        if not phases:
            return True
        position = min(self._positions.get(rail, 0), len(phases) - 1)
        seen = self._collectives_seen.get(rail, 0)
        return seen >= phases[position].num_collectives
